"""Maximum weight matching tests."""

import numpy as np
import pytest

from repro.algorithms import max_weight_matching
from repro.core.engine import Engine
from repro.graph import Graph, path_graph, rmat
from repro.reference import serial

from ..conftest import GRIDS, random_graph


def _weighted(g, seed=7):
    return g.with_random_weights(seed=seed)


class TestCorrectness:
    @pytest.mark.parametrize("grid", GRIDS, ids=lambda g: f"{g.C}x{g.R}")
    def test_matches_serial_all_grids(self, rmat_graph, grid):
        g = _weighted(rmat_graph)
        res = max_weight_matching(Engine(g, grid=grid))
        assert np.array_equal(res.values, serial.locally_dominant_matching(g))

    def test_matching_valid(self, rmat_graph):
        g = _weighted(rmat_graph)
        res = max_weight_matching(Engine(g, 4))
        assert serial.matching_is_valid(g, res.values)

    def test_unweighted_rejected(self, rmat_graph):
        with pytest.raises(ValueError):
            max_weight_matching(Engine(rmat_graph, 4))

    def test_single_edge(self):
        g = Graph.from_edges([0], [1], 2, weights=[0.5])
        res = max_weight_matching(Engine(g, 1))
        assert res.values.tolist() == [1, 0]

    def test_triangle_picks_heaviest(self):
        g = Graph.from_edges([0, 1, 2], [1, 2, 0], 3, weights=[0.9, 0.5, 0.1])
        res = max_weight_matching(Engine(g, 1))
        assert res.values.tolist() == [1, 0, -1]

    def test_path_alternation(self):
        g = _weighted(path_graph(30), seed=2)
        res = max_weight_matching(Engine(g, 4))
        ref = serial.locally_dominant_matching(g)
        assert np.array_equal(res.values, ref)
        assert serial.matching_is_valid(g, res.values)

    def test_random_graph_sweep(self):
        for seed in range(5):
            g = _weighted(random_graph(seed + 11, n_max=90), seed=seed)
            res = max_weight_matching(Engine(g, 4))
            assert np.array_equal(res.values, serial.locally_dominant_matching(g))


class TestApproximationQuality:
    def test_half_approximation_on_paths(self):
        """Locally-dominant matching is a 1/2-approximation; on a path
        an exact solution is computable by DP for comparison."""
        g = _weighted(path_graph(16), seed=5)
        res = max_weight_matching(Engine(g, 4))
        got = serial.matching_weight(g, res.values)

        # DP over the path for the exact maximum weight matching
        w = [
            float(g.edge_weights(v)[list(g.neighbors(v)).index(v + 1)])
            for v in range(15)
        ]
        best = [0.0] * 17
        for i in range(1, 16):
            best[i + 1] = max(best[i], best[i - 1] + w[i - 1])
        assert got >= 0.5 * best[16]

    def test_weight_positive_when_edges_exist(self, rmat_graph):
        g = _weighted(rmat_graph)
        res = max_weight_matching(Engine(g, 4))
        assert serial.matching_weight(g, res.values) > 0


class TestBehaviour:
    def test_rounds_bounded(self, rmat_graph):
        g = _weighted(rmat_graph)
        res = max_weight_matching(Engine(g, 4))
        assert 1 <= res.iterations <= 30

    def test_max_rounds_respected(self, rmat_graph):
        g = _weighted(rmat_graph)
        res = max_weight_matching(Engine(g, 4), max_rounds=1)
        assert res.iterations == 1
        assert serial.matching_is_valid(g, res.values)

    def test_empty_graph(self):
        g = Graph.from_edges([], [], 4, weights=[])
        res = max_weight_matching(Engine(g, 1))
        assert np.all(res.values == -1)
