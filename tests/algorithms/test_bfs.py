"""Direction-optimizing BFS tests."""

import numpy as np
import pytest

from repro.algorithms import bfs
from repro.core.engine import Engine
from repro.graph import Graph, grid_graph, path_graph, star_graph
from repro.reference import serial

from ..conftest import GRIDS, random_graph


class TestCorrectness:
    @pytest.mark.parametrize("grid", GRIDS, ids=lambda g: f"{g.C}x{g.R}")
    def test_levels_and_parents_all_grids(self, rmat_graph, grid):
        res = bfs(Engine(rmat_graph, grid=grid), root=0)
        assert np.array_equal(res.extra["levels"], serial.bfs_levels(rmat_graph, 0))
        assert serial.bfs_parents_valid(rmat_graph, 0, res.values)

    @pytest.mark.parametrize("root", [0, 7, 255])
    def test_various_roots(self, rmat_graph, root):
        res = bfs(Engine(rmat_graph, 4), root=root)
        assert np.array_equal(
            res.extra["levels"], serial.bfs_levels(rmat_graph, root)
        )
        assert serial.bfs_parents_valid(rmat_graph, root, res.values)

    def test_root_is_own_parent(self, rmat_graph):
        res = bfs(Engine(rmat_graph, 4), root=3)
        assert res.values[3] == 3
        assert res.extra["levels"][3] == 0

    def test_unreachable_marked(self):
        g = Graph.from_edges([0], [1], 5)  # 2,3,4 unreachable
        res = bfs(Engine(g, 4), root=0)
        assert np.array_equal(res.values[2:], [-1, -1, -1])
        assert np.array_equal(res.extra["levels"][2:], [-1, -1, -1])
        assert res.extra["n_visited"] == 2

    def test_long_path_stays_top_down(self):
        res = bfs(Engine(path_graph(60), 4), root=0)
        assert set(res.extra["directions"]) == {"top-down"}
        assert res.extra["levels"][59] == 59

    def test_star_switches_bottom_up(self):
        res = bfs(Engine(star_graph(300), 4), root=0)
        assert "bottom-up" in res.extra["directions"]
        assert np.all(res.extra["levels"][1:] == 1)

    def test_hybrid_off_pure_top_down(self, rmat_graph):
        res = bfs(Engine(rmat_graph, 4), root=0, hybrid=False)
        assert set(res.extra["directions"]) == {"top-down"}
        assert np.array_equal(res.extra["levels"], serial.bfs_levels(rmat_graph, 0))

    def test_bad_root(self, rmat_graph):
        with pytest.raises(ValueError):
            bfs(Engine(rmat_graph, 4), root=-1)

    def test_random_graph_sweep(self):
        for seed in range(5):
            g = random_graph(seed + 7, n_max=150)
            root = seed % g.n_vertices
            res = bfs(Engine(g, 4), root=root)
            assert np.array_equal(
                res.extra["levels"], serial.bfs_levels(g, root)
            )
            assert serial.bfs_parents_valid(g, root, res.values)


class TestBehaviour:
    def test_lattice_hybrid_matches(self):
        g = grid_graph(15, 15)
        res = bfs(Engine(g, 9), root=0)
        assert np.array_equal(res.extra["levels"], serial.bfs_levels(g, 0))

    def test_sparse_comms_used(self, rmat_graph):
        res = bfs(Engine(rmat_graph, 4), root=0)
        assert res.counters["allgatherv"]["calls"] > 0

    def test_iterations_equal_eccentricity_plus_one(self):
        g = path_graph(20)
        res = bfs(Engine(g, 4), root=0)
        # 19 productive levels; the run stops once all are visited
        assert res.iterations == 19


class TestPseudoDiameter:
    def test_path_exact(self):
        from repro.algorithms import pseudo_diameter

        res = pseudo_diameter(Engine(path_graph(30), 4), start=10)
        assert res.extra["diameter_lower_bound"] == 29
        a, b = res.extra["endpoints"]
        assert {a, b} == {0, 29}

    def test_lattice_exact(self):
        from repro.algorithms import pseudo_diameter

        res = pseudo_diameter(Engine(grid_graph(6, 9), 4), start=20)
        assert res.extra["diameter_lower_bound"] == 5 + 8

    def test_is_lower_bound(self, rmat_graph):
        from repro.algorithms import pseudo_diameter
        import numpy as np

        res = pseudo_diameter(Engine(rmat_graph, 4), start=0)
        # the bound is realized by an actual BFS depth
        levels = serial.bfs_levels(rmat_graph, res.extra["endpoints"][0])
        assert levels.max() >= res.extra["diameter_lower_bound"]

    def test_bad_start(self, rmat_graph):
        from repro.algorithms import pseudo_diameter

        with pytest.raises(ValueError):
            pseudo_diameter(Engine(rmat_graph, 4), start=-1)

    def test_timings_accumulate_across_sweeps(self):
        from repro.algorithms import pseudo_diameter

        engine = Engine(path_graph(40), 4)
        multi = pseudo_diameter(engine, start=20, sweeps=3)
        single = pseudo_diameter(engine, start=20, sweeps=1)
        assert multi.timings.total > single.timings.total
