"""Pointer jumping (packet swapping) tests."""

import numpy as np
import pytest

from repro.algorithms import initial_parents, pointer_jumping
from repro.core.engine import Engine
from repro.graph import Graph, grid_graph, path_graph, star_graph
from repro.reference import serial

from ..conftest import GRIDS, random_graph


class TestInitialForest:
    def test_min_neighbor_rule(self):
        g = path_graph(4)
        parents = initial_parents(g)
        # 0 is a local minimum (root); others point down the path
        assert parents.tolist() == [0, 0, 1, 2]

    def test_acyclic(self, rmat_graph):
        parents = initial_parents(rmat_graph)
        v = np.arange(rmat_graph.n_vertices)
        assert np.all(parents <= v)  # strictly decreasing or root

    def test_isolated_vertices_are_roots(self):
        g = Graph.from_edges([0], [1], 4)
        parents = initial_parents(g)
        assert parents[2] == 2 and parents[3] == 3


class TestDistributedRoots:
    @pytest.mark.parametrize("grid", GRIDS, ids=lambda g: f"{g.C}x{g.R}")
    def test_matches_serial_all_grids(self, rmat_graph, grid):
        ref = serial.pointer_jumping_roots(initial_parents(rmat_graph))
        res = pointer_jumping(Engine(rmat_graph, grid=grid))
        assert np.array_equal(res.values, ref)

    def test_connected_graph_single_root(self):
        g = grid_graph(7, 7)
        res = pointer_jumping(Engine(g, 4))
        # min-neighbor forests on a connected lattice converge to
        # vertex 0's tree... only if the forest is a single tree; check
        # against the serial chase instead of assuming.
        ref = serial.pointer_jumping_roots(initial_parents(g))
        assert np.array_equal(res.values, ref)
        assert res.extra["n_roots"] == np.unique(ref).size

    def test_star_two_iterations(self):
        g = star_graph(64)
        res = pointer_jumping(Engine(g, 4))
        assert np.all(res.values == 0)

    def test_long_path_logarithmic_iterations(self):
        g = path_graph(256)
        res = pointer_jumping(Engine(g, 4))
        assert np.all(res.values == 0)
        # pointer doubling: ~log2(depth) + termination rounds
        assert res.iterations <= 12

    def test_roots_point_to_themselves(self, rmat_graph):
        res = pointer_jumping(Engine(rmat_graph, 4))
        roots = np.unique(res.values)
        assert np.array_equal(res.values[roots], roots)

    def test_random_graph_sweep(self):
        for seed in range(5):
            g = random_graph(seed + 53, n_max=130)
            ref = serial.pointer_jumping_roots(initial_parents(g))
            res = pointer_jumping(Engine(g, 4))
            assert np.array_equal(res.values, ref)

    def test_roots_refine_components(self, rmat_graph):
        """Every tree lives inside one connected component."""
        res = pointer_jumping(Engine(rmat_graph, 4))
        cc = serial.connected_components(rmat_graph)
        for v in range(0, rmat_graph.n_vertices, 17):
            assert cc[res.values[v]] == cc[v]

    def test_max_iterations(self):
        g = path_graph(200)
        res = pointer_jumping(Engine(g, 4), max_iterations=2)
        assert res.iterations == 2
