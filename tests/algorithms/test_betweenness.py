"""Betweenness centrality (extension algorithm) tests."""

import networkx as nx
import numpy as np
import pytest

from repro.algorithms.betweenness import betweenness
from repro.core.engine import Engine
from repro.graph import Graph, grid_graph, path_graph, rmat, star_graph

from ..conftest import random_graph


def nx_bc(g, normalized=False) -> np.ndarray:
    G = nx.Graph()
    G.add_nodes_from(range(g.n_vertices))
    src = np.repeat(np.arange(g.n_vertices), g.degrees())
    G.add_edges_from(zip(src.tolist(), g.indices.tolist()))
    bc = nx.betweenness_centrality(G, normalized=normalized)
    return np.array([bc[v] for v in range(g.n_vertices)])


class TestExact:
    def test_path_interior_dominates(self):
        g = path_graph(9)
        res = betweenness(Engine(g, 4))
        assert np.allclose(res.values, nx_bc(g))
        assert np.argmax(res.values) == 4  # middle of the path

    def test_star_center_takes_all(self):
        g = star_graph(12)
        res = betweenness(Engine(g, 4))
        assert np.allclose(res.values, nx_bc(g))
        assert res.values[0] == res.values.max()
        assert np.all(res.values[1:] == 0)

    def test_lattice_matches(self):
        g = grid_graph(4, 5)
        res = betweenness(Engine(g, 4))
        assert np.allclose(res.values, nx_bc(g))

    def test_rmat_matches_all_grids(self):
        from repro.comm.grid import Grid2D

        g = rmat(6, seed=2)
        ref = nx_bc(g)
        for grid in [Grid2D(2, 2), Grid2D(3, 2), Grid2D(4, 4)]:
            res = betweenness(Engine(g, grid=grid))
            assert np.allclose(res.values, ref)

    def test_disconnected_graph(self):
        g = Graph.from_edges([0, 1, 3, 4], [1, 2, 4, 5], 6)  # two paths
        res = betweenness(Engine(g, 4))
        assert np.allclose(res.values, nx_bc(g))

    def test_normalized(self):
        g = grid_graph(3, 4)
        res = betweenness(Engine(g, 4), normalized=True)
        assert np.allclose(res.values, nx_bc(g, normalized=True))
        assert res.values.max() <= 1.0

    def test_random_sweep(self):
        for seed in range(3):
            g = random_graph(seed + 17, n_max=40)
            res = betweenness(Engine(g, 4))
            assert np.allclose(res.values, nx_bc(g), atol=1e-9)


class TestSampled:
    def test_subset_of_sources(self):
        g = grid_graph(4, 4)
        res = betweenness(Engine(g, 4), sources=[0, 5, 10])
        assert res.extra["n_sources"] == 3
        assert np.all(res.values >= 0)

    def test_sampling_scales(self):
        g = rmat(7, seed=1)
        exact = betweenness(Engine(g, 4)).values
        approx = betweenness(Engine(g, 4), k_samples=40, seed=1).values
        # sampled estimator correlates strongly with the exact scores
        top_exact = set(np.argsort(exact)[-10:].tolist())
        top_approx = set(np.argsort(approx)[-10:].tolist())
        assert len(top_exact & top_approx) >= 5

    def test_sources_and_samples_conflict(self):
        g = path_graph(5)
        with pytest.raises(ValueError):
            betweenness(Engine(g, 1), sources=[0], k_samples=2)

    def test_timings_accumulate_over_sources(self):
        g = path_graph(12)
        one = betweenness(Engine(g, 4), sources=[0])
        three = betweenness(Engine(g, 4), sources=[0, 5, 11])
        assert three.timings.total > one.timings.total
