"""Collective operation tests: data movement + accounting."""

import numpy as np
import pytest

from repro.cluster import AIMOS, CostModel, Topology
from repro.comm import BroadcastCall, Communicator, VirtualClocks


@pytest.fixture
def comm():
    topo = Topology(AIMOS, 8)
    return Communicator(CostModel(AIMOS.gpu, topo), VirtualClocks(8))


class TestAllReduce:
    @pytest.mark.parametrize(
        "op,expect",
        [
            ("sum", [6.0, 9.0]),
            ("min", [1.0, 2.0]),
            ("max", [3.0, 4.0]),
            ("prod", [6.0, 24.0]),
        ],
    )
    def test_ops(self, comm, op, expect):
        bufs = [
            np.array([1.0, 3.0]),
            np.array([2.0, 2.0]),
            np.array([3.0, 4.0]),
        ]
        comm.allreduce([0, 1, 2], bufs, op=op)
        for b in bufs:
            assert np.array_equal(b, expect)

    def test_views_update_parent_arrays(self, comm):
        states = [np.zeros(6), np.ones(6)]
        comm.allreduce([0, 1], [s[2:4] for s in states], op="sum")
        assert np.array_equal(states[0], [0, 0, 1, 1, 0, 0])

    def test_boolean_ops(self, comm):
        bufs = [np.array([True, False]), np.array([True, True])]
        comm.allreduce([0, 1], bufs, op="and")
        assert np.array_equal(bufs[0], [True, False])

    def test_single_rank_noop(self, comm):
        buf = [np.array([5.0])]
        comm.allreduce([0], buf, op="sum")
        assert buf[0][0] == 5.0

    def test_unknown_op(self, comm):
        with pytest.raises(ValueError):
            comm.allreduce([0, 1], [np.zeros(1), np.zeros(1)], op="xor")

    def test_mismatched_buffers(self, comm):
        with pytest.raises(ValueError):
            comm.allreduce([0, 1], [np.zeros(1)])

    def test_group_mismatch_names_counts(self, comm):
        with pytest.raises(ValueError) as exc:
            comm.allreduce([0, 1, 2], [np.zeros(1), np.zeros(1)])
        msg = str(exc.value)
        assert "3 ranks" in msg and "2 buffers" in msg
        assert "[0, 1, 2]" in msg

    def test_shape_skew_names_offending_rank(self, comm):
        with pytest.raises(ValueError) as exc:
            comm.allreduce(
                [0, 3, 5], [np.zeros(4), np.zeros(5), np.zeros(4)]
            )
        msg = str(exc.value)
        assert "rank 3" in msg and "(5,)" in msg
        assert "rank 0" in msg and "(4,)" in msg  # the reference rank
        assert "rank 5" not in msg  # conforming ranks are not accused

    def test_dtype_skew_names_offending_rank(self, comm):
        with pytest.raises(ValueError) as exc:
            comm.allreduce(
                [0, 1],
                [np.zeros(2, dtype=np.float64), np.zeros(2, dtype=np.int64)],
            )
        msg = str(exc.value)
        assert "rank 1" in msg and "int64" in msg

    def test_charges_time_and_counters(self, comm):
        comm.allreduce([0, 1, 2], [np.zeros(100)] * 3, op="sum")
        assert comm.clocks.elapsed > 0
        stats = comm.counters.by_kind["allreduce"]
        assert stats.calls == 1
        assert stats.serial_messages == 4  # 2(k-1)


class TestBroadcast:
    def test_copies_from_root(self, comm):
        bufs = [np.zeros(3), np.array([1.0, 2.0, 3.0]), np.zeros(3)]
        comm.broadcast([0, 1, 2], bufs, root_pos=1)
        for b in bufs:
            assert np.array_equal(b, [1.0, 2.0, 3.0])

    def test_bad_root(self, comm):
        with pytest.raises(ValueError):
            comm.broadcast([0, 1], [np.zeros(1)] * 2, root_pos=5)

    def test_grouped_broadcast(self, comm):
        s1, s2 = np.array([1.0]), np.array([2.0, 3.0])
        d1, d2a, d2b = np.zeros(1), np.zeros(2), np.zeros(2)
        comm.grouped_broadcast(
            [0, 1, 2],
            [BroadcastCall(src=s1, dests=[d1]), BroadcastCall(src=s2, dests=[d2a, d2b])],
        )
        assert d1[0] == 1.0
        assert np.array_equal(d2a, [2.0, 3.0])
        assert np.array_equal(d2b, [2.0, 3.0])

    def test_grouped_broadcast_empty(self, comm):
        before = comm.clocks.elapsed
        comm.grouped_broadcast([0, 1], [])
        assert comm.clocks.elapsed == before


class TestAllGatherv:
    def test_concatenates_in_rank_order(self, comm):
        bufs = [np.array([1.0]), np.array([]), np.array([2.0, 3.0])]
        out = comm.allgatherv([0, 1, 2], bufs)
        assert np.array_equal(out, [1.0, 2.0, 3.0])

    def test_structured_dtype(self, comm):
        dt = np.dtype([("gid", np.int64), ("val", np.float64)])
        a = np.array([(1, 0.5)], dtype=dt)
        b = np.array([(2, 0.7), (3, 0.9)], dtype=dt)
        out = comm.allgatherv([0, 1], [a, b])
        assert out.size == 3
        assert out["gid"].tolist() == [1, 2, 3]

    def test_dtype_skew_rejected_with_offenders(self, comm):
        with pytest.raises(ValueError) as exc:
            comm.allgatherv(
                [2, 4],
                [np.zeros(2, dtype=np.float64), np.zeros(3, dtype=np.float32)],
            )
        msg = str(exc.value)
        assert "one dtype" in msg
        assert "rank 2" in msg and "float64" in msg
        assert "rank 4" in msg and "float32" in msg

    def test_counters_volume(self, comm):
        bufs = [np.zeros(10), np.zeros(20)]
        comm.allgatherv([0, 1], bufs)
        assert comm.counters.by_kind["allgatherv"].bytes == 30 * 8  # (k-1)*total


class TestPointToPoint:
    def test_sendrecv_returns_copy(self, comm):
        payload = np.array([1.0, 2.0])
        out = comm.sendrecv(0, 1, payload)
        assert np.array_equal(out, payload)
        out[0] = 99.0
        assert payload[0] == 1.0

    def test_alltoallv_routing(self, comm):
        k = 3
        matrix = [
            [np.array([float(10 * i + j)]) for j in range(k)] for i in range(k)
        ]
        out = comm.alltoallv([0, 1, 2], matrix)
        # member j receives column j in row order
        assert np.array_equal(out[1], [1.0, 11.0, 21.0])

    def test_alltoallv_shape_check(self, comm):
        with pytest.raises(ValueError):
            comm.alltoallv([0, 1], [[np.zeros(1)]])

    def test_alltoallv_message_count(self, comm):
        k = 4
        matrix = [[np.zeros(1) for _ in range(k)] for _ in range(k)]
        comm.alltoallv([0, 1, 2, 3], matrix)
        assert comm.counters.by_kind["alltoallv"].serial_messages == k * (k - 1)


class TestSharingAndProfiles:
    def test_nic_sharing_increases_charged_time(self):
        topo = Topology(AIMOS, 24)
        model = CostModel(AIMOS.gpu, topo)
        c1 = Communicator(model, VirtualClocks(24))
        c2 = Communicator(model, VirtualClocks(24))
        ranks = [0, 6, 12]
        bufs1 = [np.zeros(10000) for _ in ranks]
        bufs2 = [np.zeros(10000) for _ in ranks]
        c1.allreduce(ranks, bufs1, op="sum")
        c2.allreduce(ranks, bufs2, op="sum", nic_sharing=6)
        assert c2.clocks.elapsed > c1.clocks.elapsed

    def test_generic_profile_slower_through_communicator(self):
        from repro.cluster import GENERIC_PROFILE

        topo = Topology(AIMOS, 12)
        nccl = Communicator(CostModel(AIMOS.gpu, topo), VirtualClocks(12))
        gen = Communicator(
            CostModel(AIMOS.gpu, topo, GENERIC_PROFILE), VirtualClocks(12)
        )
        ranks = list(range(12))
        nccl.allgatherv(ranks, [np.zeros(100) for _ in ranks])
        gen.allgatherv(ranks, [np.zeros(100) for _ in ranks])
        assert gen.clocks.elapsed > nccl.clocks.elapsed

    def test_data_identical_across_profiles(self):
        from repro.cluster import GENERIC_PROFILE

        topo = Topology(AIMOS, 4)
        for profile in (None, GENERIC_PROFILE):
            model = (
                CostModel(AIMOS.gpu, topo, profile)
                if profile
                else CostModel(AIMOS.gpu, topo)
            )
            comm = Communicator(model, VirtualClocks(4))
            bufs = [np.array([float(i)]) for i in range(4)]
            comm.allreduce([0, 1, 2, 3], bufs, op="sum")
            assert bufs[0][0] == 6.0  # profile changes time, never data
