"""2D grid geometry tests."""

import pytest

from repro.comm import Grid2D, factor_pairs, square_grid


class TestGrid2D:
    def test_paper_figure1_example(self):
        # Fig. 1: 2 row groups, 4 column groups, 8 ranks.
        grid = Grid2D(R=4, C=2)
        assert grid.n_ranks == 8
        assert grid.n_row_groups == 2
        assert grid.n_col_groups == 4

    def test_rank_numbering_row_major(self):
        grid = Grid2D(R=3, C=2)
        assert grid.rank_of(0, 0) == 0
        assert grid.rank_of(0, 2) == 2
        assert grid.rank_of(1, 0) == 3
        assert grid.coords(5) == (1, 2)

    def test_row_groups_are_consecutive_ranks(self):
        grid = Grid2D(R=4, C=2)
        assert grid.row_group_ranks(0) == [0, 1, 2, 3]
        assert grid.row_group_ranks(1) == [4, 5, 6, 7]

    def test_col_groups_stride(self):
        grid = Grid2D(R=4, C=2)
        assert grid.col_group_ranks(1) == [1, 5]

    def test_groups_of_rank(self):
        grid = Grid2D(R=3, C=3)
        assert grid.row_group_of(4) == [3, 4, 5]
        assert grid.col_group_of(4) == [1, 4, 7]

    def test_every_rank_in_one_row_and_col_group(self):
        grid = Grid2D(R=3, C=5)
        seen_row, seen_col = set(), set()
        for id_r in range(grid.C):
            seen_row.update(grid.row_group_ranks(id_r))
        for id_c in range(grid.R):
            seen_col.update(grid.col_group_ranks(id_c))
        assert seen_row == seen_col == set(range(15))

    def test_bounds_checked(self):
        grid = Grid2D(R=2, C=2)
        with pytest.raises(ValueError):
            grid.rank_of(2, 0)
        with pytest.raises(ValueError):
            grid.coords(4)
        with pytest.raises(ValueError):
            Grid2D(R=0, C=1)

    def test_is_square(self):
        assert Grid2D(R=4, C=4).is_square
        assert not Grid2D(R=8, C=2).is_square


class TestHelpers:
    def test_square_grid(self):
        g = square_grid(16)
        assert g.R == g.C == 4

    def test_square_grid_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            square_grid(12)

    def test_factor_pairs_covers_all(self):
        pairs = factor_pairs(256)
        assert len(pairs) == 9  # 1,2,4,...,256
        assert all(g.n_ranks == 256 for g in pairs)
        assert any(g.is_square for g in pairs)

    def test_factor_pairs_prime(self):
        pairs = factor_pairs(7)
        assert len(pairs) == 2
