"""Virtual clock tests."""

import pytest

from repro.comm import CommCounters, VirtualClocks


class TestCharging:
    def test_compute_advances_only_one_rank(self):
        clocks = VirtualClocks(4)
        clocks.add_compute(1, 0.5)
        assert clocks.clock[1] == 0.5
        assert clocks.clock[0] == 0.0
        assert clocks.compute[1] == 0.5

    def test_sync_group_waits_for_slowest(self):
        clocks = VirtualClocks(4)
        clocks.add_compute(0, 1.0)
        clocks.add_compute(1, 3.0)
        clocks.sync_group([0, 1], 0.5)
        # both end at max(1, 3) + 0.5
        assert clocks.clock[0] == clocks.clock[1] == 3.5
        assert clocks.comm[0] == clocks.comm[1] == 0.5

    def test_sync_leaves_other_ranks(self):
        clocks = VirtualClocks(4)
        clocks.sync_group([0, 1], 1.0)
        assert clocks.clock[2] == 0.0

    def test_subgroups_progress_independently(self):
        clocks = VirtualClocks(4)
        clocks.sync_group([0, 1], 1.0)
        clocks.sync_group([2, 3], 5.0)
        assert clocks.clock[0] == 1.0
        assert clocks.clock[3] == 5.0

    def test_barrier_syncs_without_charge(self):
        clocks = VirtualClocks(3)
        clocks.add_compute(2, 2.0)
        clocks.barrier()
        assert list(clocks.clock) == [2.0, 2.0, 2.0]
        assert clocks.comm.sum() == 0.0

    def test_negative_time_rejected(self):
        clocks = VirtualClocks(2)
        with pytest.raises(ValueError):
            clocks.add_compute(0, -1.0)
        with pytest.raises(ValueError):
            clocks.sync_group([0, 1], -0.1)

    def test_needs_ranks(self):
        with pytest.raises(ValueError):
            VirtualClocks(0)


class TestReporting:
    def test_snapshot_is_max_over_ranks(self):
        clocks = VirtualClocks(3)
        clocks.add_compute(0, 1.0)
        clocks.add_compute(1, 4.0)
        snap = clocks.snapshot()
        assert snap.total == 4.0
        assert snap.compute == 4.0
        assert snap.comm == 0.0

    def test_iteration_marks_deltas(self):
        clocks = VirtualClocks(2)
        clocks.add_compute(0, 1.0)
        d1 = clocks.mark_iteration()
        clocks.sync_group([0, 1], 2.0)
        d2 = clocks.mark_iteration()
        assert d1.total == pytest.approx(1.0)
        assert d2.total == pytest.approx(2.0)
        assert d2.comm == pytest.approx(2.0)

    def test_elapsed(self):
        clocks = VirtualClocks(2)
        clocks.add_compute(1, 2.5)
        assert clocks.elapsed == 2.5

    def test_phase_subtraction(self):
        clocks = VirtualClocks(1)
        clocks.add_compute(0, 1.0)
        a = clocks.snapshot()
        clocks.add_compute(0, 2.0)
        b = clocks.snapshot()
        d = b - a
        assert d.total == pytest.approx(2.0)
        assert d.compute == pytest.approx(2.0)


class TestCounterMarks:
    def test_marks_snapshot_attached_counters(self):
        counters = CommCounters()
        clocks = VirtualClocks(2, counters=counters)
        counters.record("allreduce", 2, 4, 100)
        clocks.mark_iteration()
        counters.record("allreduce", 2, 4, 60)
        clocks.mark_iteration()
        assert len(clocks.counter_marks) == 2
        assert clocks.counter_marks[0].total_bytes == 100
        assert clocks.counter_marks[1].total_bytes == 160
        delta = clocks.counter_marks[1] - clocks.counter_marks[0]
        assert delta.total_bytes == 60
        assert delta.by_kind["allreduce"].calls == 1

    def test_no_counters_means_no_marks(self):
        clocks = VirtualClocks(2)
        clocks.mark_iteration()
        assert clocks.counter_marks == []
