"""Communication counter tests."""

from repro.comm import CommCounters, CounterSnapshot


class TestCounters:
    def test_record_and_totals(self):
        c = CommCounters()
        c.record("allreduce", serial_messages=4, transfers=12, nbytes=1000)
        c.record("allreduce", serial_messages=4, transfers=12, nbytes=500)
        c.record("broadcast", serial_messages=2, transfers=2, nbytes=100)
        assert c.total_calls == 3
        assert c.total_serial_messages == 10
        assert c.total_transfers == 26
        assert c.total_bytes == 1600

    def test_by_kind(self):
        c = CommCounters()
        c.record("allgatherv", serial_messages=3, transfers=6, nbytes=64)
        stats = c.by_kind["allgatherv"]
        assert stats.calls == 1
        assert stats.serial_messages == 3

    def test_merge(self):
        a, b = CommCounters(), CommCounters()
        a.record("x", 1, 1, 10)
        b.record("x", 2, 2, 20)
        b.record("y", 3, 3, 30)
        a.merge(b)
        assert a.by_kind["x"].serial_messages == 3
        assert a.by_kind["y"].bytes == 30
        assert a.total_calls == 3

    def test_summary_shape(self):
        c = CommCounters()
        c.record("sendrecv", 1, 1, 8)
        s = c.summary()
        assert s == {
            "sendrecv": {
                "calls": 1,
                "serial_messages": 1,
                "transfers": 1,
                "bytes": 8,
            }
        }

    def test_empty_totals(self):
        c = CommCounters()
        assert c.total_bytes == 0
        assert c.summary() == {}


class TestSnapshots:
    def test_snapshot_is_immutable_copy(self):
        c = CommCounters()
        c.record("allreduce", 2, 4, 100)
        snap = c.snapshot()
        c.record("allreduce", 2, 4, 100)
        assert snap.total_bytes == 100  # unchanged by later records
        assert c.total_bytes == 200

    def test_delta_is_exact_per_kind(self):
        c = CommCounters()
        c.record("allreduce", 2, 4, 100)
        before = c.snapshot()
        c.record("allreduce", 2, 4, 50)
        c.record("broadcast", 1, 1, 10)
        delta = c.snapshot() - before
        assert delta.summary() == {
            "allreduce": {
                "calls": 1, "serial_messages": 2, "transfers": 4, "bytes": 50,
            },
            "broadcast": {
                "calls": 1, "serial_messages": 1, "transfers": 1, "bytes": 10,
            },
        }
        assert delta.calls_by_kind() == {"allreduce": 1, "broadcast": 1}

    def test_delta_drops_idle_kinds(self):
        c = CommCounters()
        c.record("sendrecv", 1, 1, 8)
        before = c.snapshot()
        c.record("allgatherv", 3, 6, 64)
        delta = c.snapshot() - before
        assert "sendrecv" not in delta.by_kind
        assert delta.total_bytes == 64

    def test_empty_snapshot_and_truthiness(self):
        empty = CounterSnapshot.empty()
        assert not empty
        c = CommCounters()
        assert not c.snapshot()
        c.record("x", 1, 1, 1)
        assert c.snapshot()
        assert (c.snapshot() - c.snapshot()) == CounterSnapshot.empty() or True
        assert not (c.snapshot() - c.snapshot())

    def test_snapshot_minus_empty_equals_totals(self):
        c = CommCounters()
        c.record("x", 1, 2, 3)
        c.record("y", 4, 5, 6)
        delta = c.snapshot() - CounterSnapshot.empty()
        assert delta.total_serial_messages == c.total_serial_messages
        assert delta.total_transfers == c.total_transfers
        assert delta.total_bytes == c.total_bytes
        assert delta.total_calls == c.total_calls
