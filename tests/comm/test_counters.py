"""Communication counter tests."""

from repro.comm import CommCounters


class TestCounters:
    def test_record_and_totals(self):
        c = CommCounters()
        c.record("allreduce", serial_messages=4, transfers=12, nbytes=1000)
        c.record("allreduce", serial_messages=4, transfers=12, nbytes=500)
        c.record("broadcast", serial_messages=2, transfers=2, nbytes=100)
        assert c.total_calls == 3
        assert c.total_serial_messages == 10
        assert c.total_transfers == 26
        assert c.total_bytes == 1600

    def test_by_kind(self):
        c = CommCounters()
        c.record("allgatherv", serial_messages=3, transfers=6, nbytes=64)
        stats = c.by_kind["allgatherv"]
        assert stats.calls == 1
        assert stats.serial_messages == 3

    def test_merge(self):
        a, b = CommCounters(), CommCounters()
        a.record("x", 1, 1, 10)
        b.record("x", 2, 2, 20)
        b.record("y", 3, 3, 30)
        a.merge(b)
        assert a.by_kind["x"].serial_messages == 3
        assert a.by_kind["y"].bytes == 30
        assert a.total_calls == 3

    def test_summary_shape(self):
        c = CommCounters()
        c.record("sendrecv", 1, 1, 8)
        s = c.summary()
        assert s == {
            "sendrecv": {
                "calls": 1,
                "serial_messages": 1,
                "transfers": 1,
                "bytes": 8,
            }
        }

    def test_empty_totals(self):
        c = CommCounters()
        assert c.total_bytes == 0
        assert c.summary() == {}
