"""Split-phase collective tests: the overlap model's core invariants.

The clock-level contract (docs/MODEL.md):

* issue charges nothing — it only barriers the group to its max clock;
* complete charges the full blocking comm cost to the ``comm`` lane and
  advances the group to ``issued_at + max(elapsed, comm)``, recording
  ``min(elapsed, comm)`` in the ``overlap`` lane;
* therefore ``overlap + exposed == blocking comm`` for every collective
  (exposed being the wall-clock the completion actually added), and an
  immediate wait degenerates bit-exactly to ``sync_group``.
"""

import numpy as np
import pytest

from repro.cluster import AIMOS, CostModel, Topology
from repro.comm import Communicator, VirtualClocks


@pytest.fixture
def comm():
    topo = Topology(AIMOS, 8)
    return Communicator(CostModel(AIMOS.gpu, topo), VirtualClocks(8))


class TestClockIssueComplete:
    def test_immediate_wait_equals_sync_group(self):
        a, b = VirtualClocks(4), VirtualClocks(4)
        for c in (a, b):
            c.add_compute(0, 1.0)
            c.add_compute(1, 3.0)
        a.sync_group([0, 1], 0.5)
        b.complete_collective(b.issue_collective([0, 1], 0.5))
        assert np.array_equal(a.clock, b.clock)
        assert np.array_equal(a.comm, b.comm)
        # nothing elapsed between issue and wait -> nothing hidden
        assert b.overlap.sum() == 0.0

    def test_issue_barriers_without_charging(self):
        clocks = VirtualClocks(4)
        clocks.add_compute(0, 1.0)
        clocks.add_compute(1, 3.0)
        clocks.issue_collective([0, 1], 0.5)
        assert clocks.clock[0] == clocks.clock[1] == 3.0
        assert clocks.comm.sum() == 0.0
        assert clocks.clock[2] == 0.0

    def test_compute_fully_hidden(self):
        clocks = VirtualClocks(2)
        h = clocks.issue_collective([0, 1], 1.0)
        clocks.add_compute(0, 0.4)  # less than the comm cost
        hidden = clocks.complete_collective(h)
        assert hidden == pytest.approx(0.4)
        # clock advanced by the comm cost only: compute hid behind it
        assert clocks.clock[0] == clocks.clock[1] == pytest.approx(1.0)
        assert clocks.comm[0] == pytest.approx(1.0)
        assert clocks.overlap[0] == pytest.approx(0.4)

    def test_comm_fully_hidden(self):
        clocks = VirtualClocks(2)
        h = clocks.issue_collective([0, 1], 1.0)
        clocks.add_compute(1, 2.5)  # more than the comm cost
        hidden = clocks.complete_collective(h)
        assert hidden == pytest.approx(1.0)
        # comm entirely hidden behind the longer compute
        assert clocks.clock[0] == clocks.clock[1] == pytest.approx(2.5)
        assert clocks.comm[1] == pytest.approx(1.0)
        assert clocks.overlap[1] == pytest.approx(1.0)

    def test_double_complete_rejected(self):
        clocks = VirtualClocks(2)
        h = clocks.issue_collective([0, 1], 0.1)
        clocks.complete_collective(h)
        with pytest.raises(ValueError, match="already completed"):
            clocks.complete_collective(h)

    def test_negative_cost_rejected(self):
        clocks = VirtualClocks(2)
        with pytest.raises(ValueError):
            clocks.issue_collective([0, 1], -0.1)

    def test_overlap_plus_exposed_equals_blocking_comm(self):
        """Property: over random issue/compute/complete sequences, every
        collective's hidden plus exposed time reconstructs its blocking
        comm charge exactly: ``hidden = min(elapsed, comm)`` and the
        completion extends the group clock by ``comm - hidden``."""
        rng = np.random.default_rng(7)
        clocks = VirtualClocks(6)
        for _ in range(200):
            ranks = [
                int(r)
                for r in sorted(
                    rng.choice(6, size=int(rng.integers(2, 6)), replace=False)
                )
            ]
            comm_cost = float(rng.uniform(0.0, 2.0))
            h = clocks.issue_collective(ranks, comm_cost)
            for r in ranks:
                if rng.random() < 0.7:
                    clocks.add_compute(r, float(rng.uniform(0.0, 2.0)))
            elapsed = float(clocks.clock[ranks].max()) - h.issued_at
            hidden = clocks.complete_collective(h)
            exposed = float(clocks.clock[ranks].max()) - h.issued_at - elapsed
            assert hidden == pytest.approx(min(elapsed, comm_cost))
            assert hidden + exposed == pytest.approx(comm_cost)
        # lane containment: overlap is part of comm, never exceeds it
        assert (clocks.overlap <= clocks.comm + 1e-12).all()

    def test_blocking_and_overlapped_sequences_agree_on_lanes(self):
        """Running the same (compute, collective) schedule blocking vs
        split-phase yields identical compute/comm lanes; the overlapped
        clock is behind by exactly the per-rank hidden time."""
        rng = np.random.default_rng(11)
        steps = []
        for _ in range(50):
            ranks = sorted(
                rng.choice(4, size=int(rng.integers(2, 5)), replace=False)
            )
            steps.append(
                (
                    [int(r) for r in ranks],
                    float(rng.uniform(0.0, 1.0)),
                    [float(rng.uniform(0.0, 1.0)) for _ in ranks],
                )
            )
        blk, ovl = VirtualClocks(4), VirtualClocks(4)
        for ranks, cost, compute in steps:
            for r, c in zip(ranks, compute):
                blk.add_compute(r, c)
            blk.sync_group(ranks, cost)
            h = ovl.issue_collective(ranks, cost)
            for r, c in zip(ranks, compute):
                ovl.add_compute(r, c)
            ovl.complete_collective(h)
        assert np.array_equal(blk.compute, ovl.compute)
        assert np.array_equal(blk.comm, ovl.comm)
        assert (ovl.clock <= blk.clock + 1e-12).all()

    def test_state_dict_round_trip(self):
        clocks = VirtualClocks(3)
        h = clocks.issue_collective([0, 1], 0.5)
        clocks.add_compute(0, 0.3)
        clocks.complete_collective(h)
        restored = VirtualClocks(3)
        restored.load_state(clocks.state_dict())
        assert np.array_equal(restored.overlap, clocks.overlap)
        assert restored.overlap_total == clocks.overlap_total

    def test_load_state_before_overlap_lane(self):
        """Checkpoints written before the overlap lane existed load
        with a zero lane (backward compatibility)."""
        clocks = VirtualClocks(2)
        clocks.sync_group([0, 1], 1.0)
        state = clocks.state_dict()
        state.pop("overlap")
        fresh = VirtualClocks(2)
        fresh.load_state(state)
        assert fresh.overlap.sum() == 0.0
        assert np.array_equal(fresh.comm, clocks.comm)


class TestSplitPhaseCommunicator:
    def _fresh(self):
        topo = Topology(AIMOS, 8)
        return Communicator(CostModel(AIMOS.gpu, topo), VirtualClocks(8))

    def test_allreduce_matches_blocking(self):
        blk, ovl = self._fresh(), self._fresh()
        data = [np.array([float(r), 2.0 * r]) for r in range(4)]
        b_bufs = [d.copy() for d in data]
        o_bufs = [d.copy() for d in data]
        blk.allreduce([0, 1, 2, 3], b_bufs, op="sum")
        h = ovl.start_allreduce([0, 1, 2, 3], o_bufs, op="sum")
        # data and counters are already final at issue
        for b, o in zip(b_bufs, o_bufs):
            assert np.array_equal(b, o)
        assert blk.counters.snapshot() == ovl.counters.snapshot()
        ovl.wait(h)
        assert np.array_equal(blk.clocks.clock, ovl.clocks.clock)
        assert np.array_equal(blk.clocks.comm, ovl.clocks.comm)

    def test_allgatherv_matches_blocking(self):
        blk, ovl = self._fresh(), self._fresh()
        send = [np.arange(r + 1, dtype=np.float64) for r in range(3)]
        expect = blk.allgatherv([0, 1, 2], [s.copy() for s in send])
        h = ovl.start_allgatherv([0, 1, 2], [s.copy() for s in send])
        assert np.array_equal(h.result, expect)
        got = ovl.wait(h)
        assert got is h.result
        assert np.array_equal(blk.clocks.clock, ovl.clocks.clock)
        assert blk.counters.snapshot() == ovl.counters.snapshot()

    def test_alltoallv_matches_blocking(self):
        blk, ovl = self._fresh(), self._fresh()

        def matrix():
            return [
                [np.full(s + d + 1, 10 * s + d, dtype=np.float64) for d in range(3)]
                for s in range(3)
            ]

        expect = blk.alltoallv([0, 1, 2], matrix())
        h = ovl.start_alltoallv([0, 1, 2], matrix())
        for e, g in zip(expect, h.result):
            assert np.array_equal(e, g)
        ovl.wait(h)
        assert np.array_equal(blk.clocks.clock, ovl.clocks.clock)
        assert blk.counters.snapshot() == ovl.counters.snapshot()

    def test_compute_between_issue_and_wait_is_hidden(self, comm):
        bufs = [np.ones(1024) for _ in range(4)]
        h = comm.start_allreduce([0, 1, 2, 3], bufs, op="sum")
        comm.clocks.add_compute(0, 10.0)  # dwarfs the comm cost
        comm.wait(h)
        # comm fully hidden: the clock is compute-bound
        assert comm.clocks.clock[0] == pytest.approx(10.0)
        assert comm.clocks.overlap[0] == pytest.approx(comm.clocks.comm[0])
