"""Hypothesis property tests over the whole stack.

The central invariant — distributed state == serial state, for ANY
graph, ANY grid, ANY configuration — expressed as generated-input
properties rather than fixed cases.  Kept at modest sizes so the suite
stays fast; the fixed-case tests cover the larger configurations.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Engine, algorithms
from repro.comm.grid import Grid2D
from repro.graph import Graph
from repro.reference import serial

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def graph_and_grid(draw, weighted=False, n_max=60):
    n = draw(st.integers(2, n_max))
    m = draw(st.integers(0, 4 * n))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    g = Graph.from_edges(
        rng.integers(0, n, size=m), rng.integers(0, n, size=m), n
    )
    if weighted:
        g = g.with_random_weights(seed=seed)
    r = draw(st.integers(1, 4))
    c = draw(st.integers(1, 4))
    return g, Grid2D(R=r, C=c)


class TestDistributedEqualsSerial:
    @settings(**SETTINGS)
    @given(gg=graph_and_grid())
    def test_cc_property(self, gg):
        g, grid = gg
        res = algorithms.connected_components(Engine(g, grid=grid))
        assert np.array_equal(
            serial.canonical_labels(res.values),
            serial.canonical_labels(serial.connected_components(g)),
        )

    @settings(**SETTINGS)
    @given(gg=graph_and_grid(), direction=st.sampled_from(["push", "pull"]),
           mode=st.sampled_from(["dense", "sparse", "switch"]),
           use_queue=st.booleans())
    def test_cc_all_configurations_property(self, gg, direction, mode, use_queue):
        g, grid = gg
        res = algorithms.connected_components(
            Engine(g, grid=grid), direction=direction, mode=mode, use_queue=use_queue
        )
        assert np.array_equal(
            serial.canonical_labels(res.values),
            serial.canonical_labels(serial.connected_components(g)),
        )

    @settings(**SETTINGS)
    @given(gg=graph_and_grid(), iters=st.integers(1, 8))
    def test_pagerank_property(self, gg, iters):
        g, grid = gg
        res = algorithms.pagerank(Engine(g, grid=grid), iterations=iters)
        assert np.allclose(res.values, serial.pagerank(g, iters), atol=1e-11)
        assert res.values.sum() == pytest.approx(1.0)

    @settings(**SETTINGS)
    @given(gg=graph_and_grid(), root_seed=st.integers(0, 10**6))
    def test_bfs_property(self, gg, root_seed):
        g, grid = gg
        root = root_seed % g.n_vertices
        res = algorithms.bfs(Engine(g, grid=grid), root=root)
        assert np.array_equal(res.extra["levels"], serial.bfs_levels(g, root))
        assert serial.bfs_parents_valid(g, root, res.values)

    @settings(**SETTINGS)
    @given(gg=graph_and_grid(), iters=st.integers(1, 6))
    def test_label_propagation_property(self, gg, iters):
        g, grid = gg
        res = algorithms.label_propagation(Engine(g, grid=grid), iterations=iters)
        assert np.array_equal(res.values, serial.label_propagation(g, iters))

    @settings(**SETTINGS)
    @given(gg=graph_and_grid(weighted=True, n_max=40))
    def test_matching_property(self, gg):
        g, grid = gg
        res = algorithms.max_weight_matching(Engine(g, grid=grid))
        assert np.array_equal(res.values, serial.locally_dominant_matching(g))
        assert serial.matching_is_valid(g, res.values)

    @settings(**SETTINGS)
    @given(gg=graph_and_grid(n_max=40))
    def test_pointer_jumping_property(self, gg):
        g, grid = gg
        res = algorithms.pointer_jumping(Engine(g, grid=grid))
        ref = serial.pointer_jumping_roots(algorithms.initial_parents(g))
        assert np.array_equal(res.values, ref)


class TestStructuralProperties:
    @settings(**SETTINGS)
    @given(gg=graph_and_grid())
    def test_matching_subset_of_components(self, gg):
        """Structural relation: PJ roots refine CC components."""
        g, grid = gg
        roots = algorithms.pointer_jumping(Engine(g, grid=grid)).values
        cc = serial.connected_components(g)
        assert np.array_equal(cc[roots], cc[np.arange(g.n_vertices)])

    @settings(**SETTINGS)
    @given(gg=graph_and_grid())
    def test_timings_positive_and_bounded(self, gg):
        g, grid = gg
        res = algorithms.connected_components(Engine(g, grid=grid))
        t = res.timings
        assert t.total > 0
        assert 0 <= t.compute <= t.total + 1e-12
        assert 0 <= t.comm <= t.total + 1e-12

    @settings(**SETTINGS)
    @given(gg=graph_and_grid(weighted=True, n_max=40))
    def test_matching_weight_at_least_heaviest_edge(self, gg):
        """A locally-dominant matching always contains the globally
        heaviest edge, so its weight is at least that edge's weight."""
        g, grid = gg
        if g.n_edges == 0:
            return
        res = algorithms.max_weight_matching(Engine(g, grid=grid))
        assert serial.matching_weight(g, res.values) >= g.weights.max() - 1e-12


class TestExtensionProperties:
    @settings(**SETTINGS)
    @given(gg=graph_and_grid(weighted=True, n_max=40))
    def test_sssp_property(self, gg):
        g, grid = gg
        res = algorithms.sssp(Engine(g, grid=grid), root=0)
        ref = serial.sssp_distances(g, 0)
        finite = np.isfinite(ref)
        assert np.array_equal(np.isfinite(res.values), finite)
        assert np.allclose(res.values[finite], ref[finite])

    @settings(**SETTINGS)
    @given(gg=graph_and_grid(n_max=40), seed=st.integers(0, 100))
    def test_coloring_property(self, gg, seed):
        from repro.algorithms.coloring import is_proper_coloring

        g, grid = gg
        res = algorithms.greedy_coloring(Engine(g, grid=grid), seed=seed)
        assert is_proper_coloring(g, res.values)
        # color count never exceeds max degree + 1 (greedy bound)
        assert res.extra["n_colors"] <= int(g.degrees().max(initial=0)) + 1

    @settings(**SETTINGS)
    @given(gg=graph_and_grid(n_max=40))
    def test_kcore_property(self, gg):
        g, grid = gg
        res = algorithms.core_numbers(Engine(g, grid=grid))
        degs = g.degrees()
        # core numbers bounded by degree and monotone under the k-core
        # definition: every vertex with core >= k has >= k neighbors
        # with core >= k
        assert np.all(res.values <= degs)
        cores = res.values
        src = np.repeat(np.arange(g.n_vertices), degs)
        for k in np.unique(cores):
            if k <= 0:
                continue
            in_core = cores >= k
            sub_sel = in_core[src] & in_core[g.indices]
            sub_deg = np.bincount(src[sub_sel], minlength=g.n_vertices)
            assert np.all(sub_deg[in_core] >= k)

    @settings(**SETTINGS)
    @given(gg=graph_and_grid(n_max=25))
    def test_triangle_property(self, gg):
        g, _ = gg
        res = algorithms.triangle_count(Engine(g, 4))
        assert res.extra["n_triangles"] == serial.triangle_count(g)
