"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.grid import Grid2D
from repro.graph import erdos_renyi_gnm, grid_graph, path_graph, rmat, star_graph

#: Grid shapes exercising square, non-square, tall/wide, and
#: non-divisible vertex counts.
GRIDS = [
    Grid2D(R=1, C=1),
    Grid2D(R=2, C=2),
    Grid2D(R=4, C=1),
    Grid2D(R=1, C=4),
    Grid2D(R=4, C=2),
    Grid2D(R=2, C=4),
    Grid2D(R=3, C=5),
    Grid2D(R=4, C=4),
]


@pytest.fixture(params=GRIDS, ids=lambda g: f"{g.C}x{g.R}")
def any_grid(request) -> Grid2D:
    return request.param


@pytest.fixture
def rmat_graph():
    return rmat(8, seed=11)


@pytest.fixture
def er_graph():
    return erdos_renyi_gnm(300, 1200, seed=4)


@pytest.fixture
def lattice():
    return grid_graph(8, 9)


@pytest.fixture
def path10():
    return path_graph(10)


@pytest.fixture
def star20():
    return star_graph(20)


def random_graph(seed: int, n_max: int = 200, density: float = 4.0):
    """Reproducible random test graph (for hand-rolled sweeps)."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, n_max))
    m = int(n * density)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    from repro.graph import Graph

    return Graph.from_edges(src, dst, n)
