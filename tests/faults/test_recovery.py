"""Crash -> restore -> resume is bit-identical to never crashing.

The core robustness claim: a crash aborts a collective *before* it
charges anything, restore rewinds to the previous superstep boundary
exactly, and replay is deterministic — so the resumed run matches a
fault-free reference bit-for-bit in values, communication counters,
and virtual clocks.  Both runs carry the same checkpoint configuration
so snapshot drain costs cancel.
"""

import numpy as np
import pytest

from repro import Engine, algorithms
from repro.core.program import VertexProgram, run_vertex_program
from repro.faults import (
    CheckpointManager,
    FaultPlan,
    FaultSpec,
    RankFailure,
    run_case,
)
from repro.graph import rmat


def crash_and_resume(make_engine, runner, crash_step=2, rank=1):
    """Run fault-free and crashed+resumed; return both (engine, result)."""
    ref_engine = make_engine()
    ref_engine.attach_checkpoints(CheckpointManager(interval=1))
    ref = runner(ref_engine)

    engine = make_engine()
    engine.attach_checkpoints(CheckpointManager(interval=1))
    engine.attach_faults(
        FaultPlan([FaultSpec("crash", crash_step, rank=rank)])
    )
    with pytest.raises(RankFailure):
        runner(engine)
    res = runner(engine, resume=True)
    return ref_engine, ref, engine, res


def assert_bit_identical(ref_engine, ref, engine, res):
    assert np.array_equal(ref.values, res.values)
    assert ref_engine.counters.summary() == engine.counters.summary()
    assert np.array_equal(ref_engine.clocks.clock, engine.clocks.clock)
    assert np.array_equal(ref_engine.clocks.compute, engine.clocks.compute)
    assert np.array_equal(ref_engine.clocks.comm, engine.clocks.comm)
    assert len(ref_engine.clocks.iteration_marks) == len(
        engine.clocks.iteration_marks
    )


class TestEveryAlgorithmRecovers:
    def test_bfs(self):
        g = rmat(7, seed=3)
        assert_bit_identical(
            *crash_and_resume(
                lambda: Engine(g, 4),
                lambda e, resume=False: algorithms.bfs(e, root=0, resume=resume),
            )
        )

    def test_pagerank(self):
        g = rmat(7, seed=3)
        assert_bit_identical(
            *crash_and_resume(
                lambda: Engine(g, 4),
                lambda e, resume=False: algorithms.pagerank(
                    e, iterations=8, resume=resume
                ),
            )
        )

    def test_pagerank_with_tolerance(self):
        g = rmat(7, seed=3)
        assert_bit_identical(
            *crash_and_resume(
                lambda: Engine(g, 4),
                lambda e, resume=False: algorithms.pagerank(
                    e, iterations=50, tol=1e-6, resume=resume
                ),
            )
        )

    def test_connected_components(self):
        g = rmat(7, seed=3)
        assert_bit_identical(
            *crash_and_resume(
                lambda: Engine(g, 4),
                lambda e, resume=False: algorithms.connected_components(
                    e, resume=resume
                ),
            )
        )

    def test_sssp(self):
        g = rmat(7, seed=3).with_random_weights(seed=1)
        assert_bit_identical(
            *crash_and_resume(
                lambda: Engine(g, 4),
                lambda e, resume=False: algorithms.sssp(
                    e, root=0, resume=resume
                ),
            )
        )

    def test_label_propagation(self):
        g = rmat(7, seed=3)
        assert_bit_identical(
            *crash_and_resume(
                lambda: Engine(g, 4),
                lambda e, resume=False: algorithms.label_propagation(
                    e, iterations=5, resume=resume
                ),
            )
        )

    def test_pointer_jumping(self):
        g = rmat(7, seed=3)
        assert_bit_identical(
            *crash_and_resume(
                lambda: Engine(g, 4),
                lambda e, resume=False: algorithms.pointer_jumping(
                    e, resume=resume
                ),
            )
        )

    def test_vertex_program(self):
        g = rmat(7, seed=3)
        prog = VertexProgram(
            name="cc_prog",
            init=lambda gids: gids.astype(np.float64),
            along_edge=lambda vals, w: vals,
            op="min",
        )
        assert_bit_identical(
            *crash_and_resume(
                lambda: Engine(g, 4),
                lambda e, resume=False: run_vertex_program(
                    e, prog, resume=resume
                ),
            )
        )


class TestCrashTiming:
    @pytest.mark.parametrize("crash_step", [1, 2, 3])
    def test_crash_at_any_superstep(self, crash_step):
        # Superstep 1 crashes before the first boundary: recovery then
        # replays from scratch (restore only has nothing to rewind to
        # when no checkpoint interval has elapsed -> handled by interval
        # =1 saving at every boundary; a step-1 crash has no checkpoint
        # and run_case grades it unrecovered, so here we start at 1 but
        # only assert for steps with a preceding boundary).
        g = rmat(7, seed=3)
        mk = lambda: Engine(g, 4)
        runner = lambda e, resume=False: algorithms.pagerank(
            e, iterations=6, resume=resume
        )
        if crash_step == 1:
            engine = mk()
            engine.attach_checkpoints(CheckpointManager(interval=1))
            engine.attach_faults(
                FaultPlan([FaultSpec("crash", 1, rank=0)])
            )
            with pytest.raises(RankFailure):
                runner(engine)
            assert engine.checkpoints.latest() is None
        else:
            assert_bit_identical(
                *crash_and_resume(mk, runner, crash_step=crash_step)
            )

    def test_sparse_checkpoint_interval_still_exact(self):
        # interval=2: the crash at superstep 5 rewinds two supersteps.
        g = rmat(7, seed=3)
        ref_engine = Engine(g, 4)
        ref_engine.attach_checkpoints(CheckpointManager(interval=2))
        ref = algorithms.pagerank(ref_engine, iterations=8)

        engine = Engine(g, 4)
        engine.attach_checkpoints(CheckpointManager(interval=2))
        engine.attach_faults(FaultPlan([FaultSpec("crash", 5, rank=2)]))
        with pytest.raises(RankFailure):
            algorithms.pagerank(engine, iterations=8)
        assert engine.checkpoints.latest().superstep == 4
        res = algorithms.pagerank(engine, iterations=8, resume=True)
        assert_bit_identical(ref_engine, ref, engine, res)


class TestAcceptanceMatrix:
    """ISSUE acceptance: BFS/PR/CC x {serial, threads:4} executors."""

    @pytest.mark.parametrize("executor", ["serial", "threads:4"])
    @pytest.mark.parametrize("algo", ["BFS", "PR", "CC"])
    def test_crash_recover_bit_identical(self, algo, executor):
        g = rmat(7, seed=3)
        case = run_case(
            lambda: Engine(g, 4, executor=executor), algo, "crash-recover"
        )
        assert case.status == "recovered"
        assert case.values_equal is True
        assert case.counters_equal is True
        assert case.clocks_equal is True
        assert case.ok
        crash_events = [e for e in case.fault_events if e["kind"] == "crash"]
        assert len(crash_events) == 1 and crash_events[0]["fatal"] is True
