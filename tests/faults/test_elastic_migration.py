"""Checkpoint migration is a bijection between 2D layouts.

The elastic-recovery invariant: gathering a checkpoint's per-rank
state windows into a global original-order vector, re-partitioning
onto any other grid, and scattering the new windows round-trips every
state value bit-identically — for every dtype, under the GID
relabeling change the new grid induces.  Exhaustively over every
``factor_pairs`` grid of 2-16 ranks, plus Hypothesis-driven random
grid pairs and payloads.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Engine
from repro.comm.clocks import VirtualClocks
from repro.comm.grid import factor_pairs, squarest_grid
from repro.faults import (
    Checkpoint,
    gather_checkpoint_state,
    migrate_checkpoint,
)
from repro.graph import rmat

GRAPH = rmat(6, seed=5)

DTYPES = [np.float64, np.float32, np.int64, np.int32, np.uint16, np.bool_]


def _vectors(n, seed):
    rng = np.random.default_rng(seed)
    out = {}
    for dt in DTYPES:
        name = f"s_{np.dtype(dt).name}"
        if dt is np.bool_:
            out[name] = rng.integers(0, 2, n).astype(dt)
        elif np.issubdtype(dt, np.floating):
            out[name] = rng.standard_normal(n).astype(dt)
        else:
            out[name] = rng.integers(0, np.iinfo(dt).max, n).astype(dt)
    return out


def _checkpoint_of(engine, vectors):
    """A synthetic layout-bearing checkpoint holding ``vectors``."""
    part = engine.partition
    states = [
        {
            name: part.scatter_global(vec, rank)
            for name, vec in vectors.items()
        }
        for rank in range(engine.n_ranks)
    ]
    return Checkpoint(
        superstep=1,
        algo="prop",
        states=states,
        counters={},
        clocks=VirtualClocks(engine.n_ranks).state_dict(),
        algo_state={},
        grid=(engine.grid.R, engine.grid.C),
        perm=part.perm.copy(),
        localmaps=[blk.localmap for blk in part.blocks],
    )


def _assert_round_trip(grid_a, grid_b, seed=0):
    vectors = _vectors(GRAPH.n_vertices, seed)
    eng_a = Engine(GRAPH, grid=grid_a)
    eng_b = Engine(GRAPH, grid=grid_b)
    ckpt = _checkpoint_of(eng_a, vectors)

    # The gather alone must already reproduce the global vectors.
    gathered = gather_checkpoint_state(ckpt)
    for name, vec in vectors.items():
        assert gathered[name].dtype == vec.dtype
        assert np.array_equal(gathered[name], vec)

    migrated, cost_s = migrate_checkpoint(ckpt, eng_b)
    assert cost_s > 0
    assert migrated.grid == (grid_b.R, grid_b.C)
    regathered = gather_checkpoint_state(migrated)
    for name, vec in vectors.items():
        assert regathered[name].dtype == vec.dtype
        assert np.array_equal(regathered[name], vec)


ALL_GRIDS = [g for n in range(2, 17) for g in factor_pairs(n)]


@pytest.mark.parametrize(
    "grid", ALL_GRIDS, ids=lambda g: f"p{g.n_ranks}-{g.C}x{g.R}"
)
def test_every_grid_migrates_to_shrunk_square(grid):
    """Every 2-16-rank grid migrates onto the squarest survivor grid."""
    survivors = max(1, grid.n_ranks - 1)
    _assert_round_trip(grid, squarest_grid(survivors))


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n_a=st.integers(min_value=2, max_value=16),
    n_b=st.integers(min_value=1, max_value=16),
    pick_a=st.integers(min_value=0, max_value=10**6),
    pick_b=st.integers(min_value=0, max_value=10**6),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_random_grid_pairs_round_trip(n_a, n_b, pick_a, pick_b, seed):
    """Arbitrary grid pairs and payloads round-trip bit-identically."""
    grids_a = factor_pairs(n_a)
    grids_b = factor_pairs(n_b)
    _assert_round_trip(
        grids_a[pick_a % len(grids_a)],
        grids_b[pick_b % len(grids_b)],
        seed=seed,
    )
