"""Shrink then grow back to the original grid is the identity.

The autoscale contract behind ``demote-then-grow-back``: migrating a
checkpoint down onto a survivor grid (a demotion) and then back up
onto the original grid (a spare adoption) must return every per-rank
state window bit-identically — same partition, same GID relabeling,
same payload bytes.  Exhaustively over every ``factor_pairs`` grid of
2-16 ranks, plus Hypothesis-driven random down-grids and payloads.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Engine
from repro.comm.clocks import VirtualClocks
from repro.comm.grid import factor_pairs, squarest_grid
from repro.faults import (
    Checkpoint,
    gather_checkpoint_state,
    migrate_checkpoint,
)
from repro.faults.health import AutoscalePolicy
from repro.graph import rmat

GRAPH = rmat(6, seed=5)

DTYPES = [np.float64, np.float32, np.int64, np.int32, np.bool_]


def _vectors(n, seed):
    rng = np.random.default_rng(seed)
    out = {}
    for dt in DTYPES:
        name = f"s_{np.dtype(dt).name}"
        if dt is np.bool_:
            out[name] = rng.integers(0, 2, n).astype(dt)
        elif np.issubdtype(dt, np.floating):
            out[name] = rng.standard_normal(n).astype(dt)
        else:
            out[name] = rng.integers(0, np.iinfo(dt).max, n).astype(dt)
    # A 2-D batched-lane state (k=3 lanes), the shape bfs_batch saves.
    out["s_lanes"] = rng.standard_normal((n, 3))
    return out


def _checkpoint_of(engine, vectors):
    part = engine.partition
    states = [
        {
            name: part.scatter_global(vec, rank)
            for name, vec in vectors.items()
        }
        for rank in range(engine.n_ranks)
    ]
    return Checkpoint(
        superstep=1,
        algo="prop",
        states=states,
        counters={},
        clocks=VirtualClocks(engine.n_ranks).state_dict(),
        algo_state={},
        grid=(engine.grid.R, engine.grid.C),
        perm=part.perm.copy(),
        localmaps=[blk.localmap for blk in part.blocks],
    )


def _assert_down_up_identity(grid, down_grid, seed=0):
    vectors = _vectors(GRAPH.n_vertices, seed)
    eng_orig = Engine(GRAPH, grid=grid)
    eng_down = Engine(GRAPH, grid=down_grid)
    original = _checkpoint_of(eng_orig, vectors)

    shrunk, down_s = migrate_checkpoint(original, eng_down)
    # Grow back onto an engine with the *original* grid: the windows
    # must be bit-identical to the pre-shrink checkpoint's.
    eng_back = Engine(GRAPH, grid=grid)
    regrown, up_s = migrate_checkpoint(shrunk, eng_back)
    assert down_s > 0 and up_s > 0
    assert regrown.grid == original.grid
    assert np.array_equal(regrown.perm, original.perm)
    assert len(regrown.states) == len(original.states)
    for before, after in zip(original.states, regrown.states):
        assert before.keys() == after.keys()
        for name in before:
            assert after[name].dtype == before[name].dtype
            assert np.array_equal(after[name], before[name]), name
    regathered = gather_checkpoint_state(regrown)
    for name, vec in vectors.items():
        assert np.array_equal(regathered[name], vec)


ALL_GRIDS = [g for n in range(2, 17) for g in factor_pairs(n)]


@pytest.mark.parametrize(
    "grid", ALL_GRIDS, ids=lambda g: f"p{g.n_ranks}-{g.C}x{g.R}"
)
def test_demote_grow_back_round_trip_every_grid(grid):
    """Down to the squarest survivor grid and back: identity."""
    _assert_down_up_identity(grid, squarest_grid(grid.n_ranks - 1))


def test_grow_grid_inverts_squarest_shrink():
    """For squarest grids, AutoscalePolicy's grow target is exactly
    the grid a one-rank demotion shrank away from."""
    pol = AutoscalePolicy()
    for n in range(2, 17):
        orig = squarest_grid(n)
        down = squarest_grid(n - 1)
        assert pol.grow_grid(down) == orig


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n=st.integers(min_value=2, max_value=16),
    pick=st.integers(min_value=0, max_value=10**6),
    pick_down=st.integers(min_value=0, max_value=10**6),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_random_down_grids_round_trip(n, pick, pick_down, seed):
    """Any down-grid (not just the squarest) round-trips bit-identically
    with arbitrary payloads."""
    grids = factor_pairs(n)
    down_grids = factor_pairs(max(1, n - 1))
    _assert_down_up_identity(
        grids[pick % len(grids)],
        down_grids[pick_down % len(down_grids)],
        seed=seed,
    )
