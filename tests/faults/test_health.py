"""HealthMonitor scoring, DemotionPolicy gates, AutoscalePolicy holds."""

import numpy as np
import pytest

from repro.faults import (
    RANK_HEALTH,
    AutoscalePolicy,
    AutoscaleRecovery,
    DemotionPolicy,
    HealthMonitor,
    KeepRows,
)
from repro.comm.grid import Grid2D


class FakeClocks:
    def __init__(self, n):
        self.compute = np.zeros(n)
        self.recovery = np.zeros(n)

    def per_rank_lanes(self):
        return {
            "compute": self.compute.copy(),
            "recovery": self.recovery.copy(),
        }


class FakeEngine:
    """Just enough engine surface for monitor/policy unit tests."""

    def __init__(self, n_ranks=4):
        self.n_ranks = n_ranks
        self.clocks = FakeClocks(n_ranks)
        self.fault_events = []
        self.checkpoints = None

    def record_event(self, event):
        self.fault_events.append(event)

    def advance(self, compute, recovery=None):
        self.clocks.compute += np.asarray(compute, dtype=float)
        if recovery is not None:
            self.clocks.recovery += np.asarray(recovery, dtype=float)


class FakeManager:
    def __init__(self, ckpt="ckpt"):
        self._ckpt = ckpt

    def latest(self):
        return self._ckpt


class TestHealthMonitorConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 0.0},
            {"alpha": 1.5},
            {"suspect_s": 0.0},
            {"rel_threshold": -1.0},
            {"chronic_after": 0},
        ],
    )
    def test_bad_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            HealthMonitor(**kwargs)

    def test_health_states_in_escalation_order(self):
        assert RANK_HEALTH == ("healthy", "suspect", "chronic")


class TestHealthMonitorScoring:
    def test_first_observe_baselines_without_events(self):
        engine = FakeEngine(4)
        mon = HealthMonitor()
        assert mon.observe(engine, 1) == []
        assert mon.n_ranks == 4
        assert mon.report()["statuses"] == ["healthy"] * 4

    def test_straggler_flagged_then_chronic_then_recovers(self):
        engine = FakeEngine(4)
        mon = HealthMonitor(alpha=0.5, chronic_after=2)
        mon.bind(engine)
        # Rank 1 is 10s slower than the 1s group median each boundary:
        # EWMA score 5.0 > threshold 4 * median(1.0) -> suspect.
        engine.advance([1.0, 11.0, 1.0, 1.0])
        events = mon.observe(engine, 1)
        assert [e["status"] for e in events] == ["suspect"]
        assert events[0]["rank"] == 1
        assert mon.status(1) == "suspect"
        # Second consecutive suspect boundary -> chronic.
        engine.advance([1.0, 11.0, 1.0, 1.0])
        events = mon.observe(engine, 2)
        assert [e["status"] for e in events] == ["chronic"]
        assert mon.chronic_ranks() == [1]
        # A clean boundary decays the EWMA below threshold -> healthy.
        engine.advance([1.0, 1.0, 1.0, 1.0])
        events = mon.observe(engine, 3)
        assert [e["status"] for e in events] == ["healthy"]
        assert mon.chronic_ranks() == []
        # All transitions also landed on the engine's event stream.
        kinds = {e["kind"] for e in engine.fault_events}
        assert kinds == {"health"}
        assert len(engine.fault_events) == 3

    def test_recovery_lane_stall_counts_as_excess(self):
        engine = FakeEngine(4)
        mon = HealthMonitor(alpha=1.0, chronic_after=1)
        mon.bind(engine)
        engine.advance(
            [1.0, 1.0, 1.0, 1.0], recovery=[0.0, 10.0, 0.0, 0.0]
        )
        events = mon.observe(engine, 1)
        assert [(e["rank"], e["status"]) for e in events] == [(1, "chronic")]

    def test_globally_charged_costs_cancel(self):
        """A uniform stall on every rank (e.g. a checkpoint drain) is
        median-relative zero excess: no one gets flagged."""
        engine = FakeEngine(4)
        mon = HealthMonitor()
        mon.bind(engine)
        engine.advance([1.0] * 4, recovery=[5.0] * 4)
        assert mon.observe(engine, 1) == []
        assert mon.report()["statuses"] == ["healthy"] * 4

    def test_rank_count_change_rebinds_and_resets(self):
        engine = FakeEngine(4)
        mon = HealthMonitor(alpha=1.0, chronic_after=1)
        mon.bind(engine)
        engine.advance([1.0, 11.0, 1.0, 1.0])
        mon.observe(engine, 1)
        assert mon.chronic_ranks() == [1]
        smaller = FakeEngine(3)
        assert mon.observe(smaller, 2) == []  # regrid happened: rebaseline
        assert mon.n_ranks == 3
        assert mon.report()["statuses"] == ["healthy"] * 3

    def test_chronic_ranks_sorted_worst_first(self):
        # 5 ranks so two stragglers leave the median at the healthy
        # baseline (median-relative scoring needs a healthy majority).
        engine = FakeEngine(5)
        mon = HealthMonitor(alpha=1.0, chronic_after=1)
        mon.bind(engine)
        engine.advance([1.0, 11.0, 21.0, 1.0, 1.0])
        mon.observe(engine, 1)
        assert mon.chronic_ranks() == [2, 1]


class TestDemotionPolicy:
    def _chronic_setup(self, n_ranks=4):
        engine = FakeEngine(n_ranks)
        engine.checkpoints = FakeManager()
        mon = HealthMonitor(alpha=1.0, chronic_after=1)
        mon.bind(engine)
        deltas = np.ones(n_ranks)
        deltas[1] = 11.0
        engine.advance(deltas)
        mon.observe(engine, 1)
        assert mon.chronic_ranks() == [1]
        return engine, mon

    def test_bad_params_rejected(self):
        for kwargs in (
            {"warmup": -1},
            {"cooldown": -1},
            {"max_demotions": -1},
        ):
            with pytest.raises(ValueError):
                DemotionPolicy(**kwargs)

    def test_demotes_chronic_rank_and_consumes_budget(self):
        engine, mon = self._chronic_setup()
        pol = DemotionPolicy(warmup=1, max_demotions=1)
        assert pol.consider(engine, mon, 1) == 1
        assert pol.demotions == 1
        # Budget spent: the same chronic rank is not demoted again.
        assert pol.consider(engine, mon, 5) is None

    def test_warmup_defers_demotion(self):
        engine, mon = self._chronic_setup()
        pol = DemotionPolicy(warmup=3)
        assert pol.consider(engine, mon, 2) is None
        assert pol.consider(engine, mon, 3) == 1

    def test_cooldown_separates_demotions(self):
        engine, mon = self._chronic_setup()
        pol = DemotionPolicy(warmup=0, cooldown=3, max_demotions=2)
        assert pol.consider(engine, mon, 1) == 1
        assert pol.consider(engine, mon, 2) is None  # 2 - 1 < 3
        assert pol.consider(engine, mon, 4) == 1

    def test_requires_checkpoint_to_drain_from(self):
        engine, mon = self._chronic_setup()
        engine.checkpoints = None
        assert DemotionPolicy().consider(engine, mon, 1) is None
        engine.checkpoints = FakeManager(ckpt=None)
        assert DemotionPolicy().consider(engine, mon, 1) is None

    def test_never_demotes_last_rank(self):
        engine, mon = self._chronic_setup()
        engine.n_ranks = 1
        assert DemotionPolicy().consider(engine, mon, 1) is None

    def test_healthy_group_yields_none(self):
        engine = FakeEngine(4)
        engine.checkpoints = FakeManager()
        mon = HealthMonitor()
        mon.bind(engine)
        engine.advance([1.0] * 4)
        mon.observe(engine, 1)
        assert DemotionPolicy().consider(engine, mon, 1) is None


class TestAutoscalePolicy:
    def test_bad_params_rejected(self):
        for kwargs in (
            {"hysteresis": -1},
            {"cooldown": -1},
            {"max_grows": -1},
        ):
            with pytest.raises(ValueError):
                AutoscalePolicy(**kwargs)

    def test_shrink_delegates_to_wrapped_policy(self):
        pol = AutoscalePolicy(shrink=KeepRows())
        grid = Grid2D(2, 2)
        assert pol.choose(grid, 2) == KeepRows().choose(grid, 2)

    def test_grow_grid_is_squarest_of_p_plus_one(self):
        pol = AutoscalePolicy()
        assert pol.grow_grid(Grid2D(1, 3)).n_ranks == 4
        assert pol.grow_grid(Grid2D(1, 3)) == Grid2D(2, 2)
        assert pol.grow_grid(Grid2D(2, 2)).n_ranks == 5

    def test_hold_reasons_in_gate_order(self):
        pol = AutoscalePolicy(hysteresis=2, cooldown=2, max_grows=1)
        assert pol.hold_reason(5) == "no-spare"
        pol.spare_arrived(5)
        assert pol.hold_reason(5) == "hysteresis"  # aged 0 < 2
        assert pol.hold_reason(7) is None  # aged 2, no prior regrid
        pol.note_regrid(7)
        assert pol.hold_reason(8) == "cooldown"  # 8 - 7 < 2
        assert pol.hold_reason(9) is None
        pol.grows = 1
        assert pol.hold_reason(9) == "max-grows"

    def test_should_grow_mirrors_hold_reason(self):
        pol = AutoscalePolicy(hysteresis=0, cooldown=0)
        assert not pol.should_grow(1)
        pol.spare_arrived(1)
        assert pol.should_grow(1)

    def test_spare_arrival_clears_held_latch(self):
        pol = AutoscalePolicy()
        pol._held = True
        pol.spare_arrived(3, count=2)
        assert pol._held is False
        assert pol.pending == [3, 3]


class TestAutoscaleRecoveryConfig:
    def test_rejects_plain_grid_policy(self):
        with pytest.raises(ValueError, match="AutoscalePolicy"):
            AutoscaleRecovery(policy=KeepRows())

    def test_defaults_are_installed(self):
        rec = AutoscaleRecovery()
        assert isinstance(rec.policy, AutoscalePolicy)
        assert isinstance(rec.monitor, HealthMonitor)
        assert isinstance(rec.demotion, DemotionPolicy)
