"""Autoscale campaign: demote, grow-back, oscillation guard, CLI."""

import json

import pytest

from repro import Engine
from repro.exec import SerialExecutor, ThreadedExecutor
from repro.cli import main
from repro.faults import (
    AUTOSCALE_SCENARIOS,
    run_autoscale_campaign,
    run_autoscale_case,
)
from repro.graph import rmat

GRAPH = rmat(7, seed=3)

MODES = {
    "serial": SerialExecutor,
    "threads4": lambda: ThreadedExecutor(max_workers=4),
}


def mk(mode="serial"):
    return Engine(GRAPH, 4, executor=MODES[mode]())


class TestScenarioTable:
    def test_expected_scenarios_present(self):
        assert set(AUTOSCALE_SCENARIOS) == {
            "chronic-straggler-demote",
            "spare-arrival-grow",
            "demote-then-grow-back",
            "grow-at-convergence-tail",
        }

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown autoscale scenario"):
            run_autoscale_case(mk, "BFS", "meteor-strike")

    def test_unknown_algo_rejected(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            run_autoscale_case(mk, "WAT", "chronic-straggler-demote")


class TestAutoscaleCases:
    @pytest.mark.parametrize("algo", ["BFS", "CC"])
    def test_demote_is_bit_identical_for_monotone(self, algo):
        case = run_autoscale_case(mk, algo, "chronic-straggler-demote")
        assert case.ok, case.error
        assert case.values_equal is True
        assert case.n_regrids == 1
        assert case.rank_delta == -1
        assert case.grid_trail == [(2, 2), (1, 3)]
        assert case.n_demotions == 1 and case.n_grows == 0

    def test_demote_events_show_health_escalation(self):
        case = run_autoscale_case(mk, "BFS", "chronic-straggler-demote")
        kinds = [e["kind"] for e in case.fault_events]
        assert "health" in kinds and "demote" in kinds
        statuses = [
            e["status"] for e in case.fault_events if e["kind"] == "health"
        ]
        assert "suspect" in statuses and "chronic" in statuses
        demote = next(e for e in case.fault_events if e["kind"] == "demote")
        assert demote["rank"] == 1
        assert demote["score"] > 0

    @pytest.mark.parametrize("algo", ["BFS", "CC"])
    def test_grow_back_round_trips_to_original_grid(self, algo):
        case = run_autoscale_case(mk, algo, "demote-then-grow-back")
        assert case.ok, case.error
        assert case.values_equal is True
        assert case.n_regrids == 2
        assert case.rank_delta == 0
        assert case.grid_trail == [(2, 2), (1, 3), (2, 2)]
        assert case.n_demotions == 1 and case.n_grows == 1

    def test_oscillation_guard_blocks_second_demotion(self):
        """The post-grow straggler probe must not trigger a second
        shrink: the demotion budget is the oscillation guard."""
        case = run_autoscale_case(mk, "PR", "demote-then-grow-back")
        assert case.ok, case.error
        assert case.n_demotions == 1
        assert case.n_regrids == 2

    def test_spare_arrival_grows_after_crash(self):
        case = run_autoscale_case(mk, "PR", "spare-arrival-grow")
        assert case.ok, case.error
        assert case.n_regrids == 2  # crash-shrink then grow
        assert case.rank_delta == 0
        assert case.n_grows == 1

    def test_convergence_tail_spare_is_held(self):
        case = run_autoscale_case(mk, "BFS", "grow-at-convergence-tail")
        assert case.ok, case.error
        assert case.n_regrids == 0
        assert case.n_holds >= 1
        hold = next(e for e in case.fault_events if e["kind"] == "hold")
        assert hold["reason"] == "hysteresis"

    def test_pagerank_demote_matches_to_tolerance(self):
        case = run_autoscale_case(mk, "PR", "chronic-straggler-demote")
        assert case.ok, case.error
        assert case.values_close is True


class TestAutoscaleCampaign:
    @pytest.mark.parametrize("mode", sorted(MODES))
    def test_full_campaign_green_on_both_executors(self, mode):
        report = run_autoscale_campaign(lambda: mk(mode))
        assert report["schema"] == "repro.faults.autoscale.v1"
        assert report["total"] == 12  # 4 scenarios x BFS/PR/CC
        assert report["failed"] == 0
        assert report["diverged"] == 0
        assert report["unrecovered"] == 0
        assert report["demotions"] == 6
        assert report["grows"] == 6
        assert report["holds"] == 3

    def test_campaign_subsets(self):
        report = run_autoscale_campaign(
            mk, algos=("BFS",), scenarios=("chronic-straggler-demote",)
        )
        assert report["total"] == 1
        assert report["cases"][0]["ok"] is True


class TestAutoscaleCLI:
    ARGS = [
        "faults",
        "--autoscale",
        "--dataset",
        "FR",
        "--target-edges",
        "4096",
        "--algos",
        "BFS",
    ]

    def test_autoscale_campaign_exits_zero(self, capsys):
        rc = main(self.ARGS)
        out = capsys.readouterr().out
        assert rc == 0
        assert "demote-then-grow-back" in out
        assert "d/g/h" in out or "dem" in out

    def test_autoscale_report_written_to_disk(self, tmp_path, capsys):
        out_path = tmp_path / "autoscale.json"
        rc = main(self.ARGS + ["--out", str(out_path)])
        assert rc == 0
        report = json.loads(out_path.read_text())
        assert report["schema"] == "repro.faults.autoscale.v1"
        assert report["failed"] == 0
        capsys.readouterr()

    def test_elastic_and_autoscale_flags_conflict(self, capsys):
        # The campaign flags form an argparse mutually-exclusive
        # group: conflicts exit 2 with a usage message on stderr.
        with pytest.raises(SystemExit) as exc:
            main(["faults", "--elastic", "--autoscale"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "usage:" in err
        assert "not allowed with argument" in err
