"""Split-phase collectives under the fault protocol.

The guard runs at ``wait`` time — detection of an in-flight
collective's corruption is end-to-end, so the crash check, CRC retry
loop, and backoff charging all happen when the handle completes, with
retry time in the recovery lane and counters recorded exactly once (at
issue).
"""

import numpy as np
import pytest

from repro.cluster import AIMOS, CostModel, Topology
from repro.comm import Communicator, VirtualClocks
from repro.faults import FaultPlan, FaultSpec, RankFailure
from repro.faults.injector import FaultInjector
from repro.faults.resilient import ResilientCommunicator


def _resilient(plan, n_ranks=4, max_retries=4):
    topo = Topology(AIMOS, n_ranks)
    inner = Communicator(CostModel(AIMOS.gpu, topo), VirtualClocks(n_ranks))
    injector = FaultInjector(plan)
    injector.begin_superstep(1)
    return ResilientCommunicator(inner, injector, max_retries=max_retries)


class TestGuardedAtWait:
    def test_faultfree_matches_blocking(self):
        blocking = _resilient(FaultPlan([]))
        split = _resilient(FaultPlan([]))
        data = [np.array([float(r)]) for r in range(4)]
        blocking.allreduce([0, 1, 2, 3], [d.copy() for d in data], op="sum")
        h = split.start_allreduce(
            [0, 1, 2, 3], [d.copy() for d in data], op="sum"
        )
        split.wait(h)
        assert np.array_equal(blocking.clocks.clock, split.clocks.clock)
        assert np.array_equal(blocking.clocks.comm, split.clocks.comm)
        assert blocking.counters.snapshot() == split.counters.snapshot()

    def test_corruption_retries_at_wait_charge_recovery(self):
        plan = FaultPlan(
            [FaultSpec("corruption", 1, collective="allgatherv", count=2)]
        )
        comm = _resilient(plan)
        send = [np.arange(r + 1, dtype=np.float64) for r in range(4)]
        h = comm.start_allgatherv([0, 1, 2, 3], send)
        # nothing charged yet: detection happens at completion
        assert comm.clocks.recovery_total == 0.0
        comm.wait(h)
        assert comm.clocks.recovery_total > 0.0
        events = [e.as_dict() for e in comm.injector.events]
        assert [e["kind"] for e in events] == ["corruption", "corruption"]
        assert all(e["detected"] for e in events)
        assert all(not e["fatal"] for e in events)

    def test_retries_never_inflate_counters(self):
        clean = _resilient(FaultPlan([]))
        faulty = _resilient(
            FaultPlan([FaultSpec("transient", 1, count=3)])
        )
        send = [np.ones(8) * r for r in range(4)]
        clean.wait(clean.start_allgatherv([0, 1, 2, 3], [s.copy() for s in send]))
        faulty.wait(faulty.start_allgatherv([0, 1, 2, 3], [s.copy() for s in send]))
        assert clean.counters.snapshot() == faulty.counters.snapshot()
        assert faulty.clocks.recovery_total > clean.clocks.recovery_total

    def test_crash_surfaces_at_wait(self):
        plan = FaultPlan([FaultSpec("crash", 1, rank=2)])
        comm = _resilient(plan)
        bufs = [np.zeros(4) for _ in range(4)]
        h = comm.start_allreduce([0, 1, 2, 3], bufs, op="sum")
        with pytest.raises(RankFailure) as exc:
            comm.wait(h)
        assert exc.value.rank == 2

    def test_exhausted_retries_escalate_at_wait(self):
        plan = FaultPlan([FaultSpec("transient", 1, count=99)])
        comm = _resilient(plan, max_retries=2)
        h = comm.start_alltoallv(
            [0, 1], [[np.ones(2), np.ones(3)], [np.ones(1), np.ones(4)]]
        )
        with pytest.raises(RankFailure):
            comm.wait(h)

    def test_retry_backoff_lands_in_overlap_window(self):
        """Backoff advances the group's clocks between issue and
        completion, so the retried collective's own comm charge can
        hide behind it — retries cost recovery time, not extra comm."""
        plan = FaultPlan([FaultSpec("corruption", 1, count=1)])
        comm = _resilient(plan)
        send = [np.ones(4) for _ in range(4)]
        h = comm.start_allgatherv([0, 1, 2, 3], send)
        comm.wait(h)
        assert comm.clocks.overlap.sum() > 0.0
        assert (comm.clocks.overlap <= comm.clocks.comm + 1e-12).all()


class TestEngineIntegration:
    def test_overlapped_run_with_transients_matches_blocking(self):
        from repro import Engine, algorithms
        from repro.graph import rmat

        g = rmat(8, seed=11)

        def run(overlap):
            e = Engine(g, 4, overlap=overlap)
            e.attach_faults(
                FaultPlan(
                    [
                        FaultSpec("transient", 2, count=1),
                        FaultSpec("corruption", 3, count=1),
                    ]
                )
            )
            return e, algorithms.pagerank(e, iterations=5)

        eb, rb = run(False)
        eo, ro = run(True)
        assert np.array_equal(rb.values, ro.values)
        assert rb.counters == ro.counters
        assert rb.timings.compute == ro.timings.compute
        assert rb.timings.comm == ro.timings.comm
        assert ro.timings.total <= rb.timings.total
        # both runs saw (and survived) the same planned faults
        assert [e["kind"] for e in eb.fault_events] == [
            e["kind"] for e in eo.fault_events
        ]
