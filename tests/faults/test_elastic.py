"""Elastic recovery: permanent rank loss -> regrid -> identical finish.

The tentpole claim: when a crash exhausts its retries, the run migrates
the latest checkpoint onto a grid over the *surviving* ranks and
resumes — and every monotone (min/max-reducing) algorithm still
finishes bit-identical to the fault-free run.  PageRank's sum
reductions are grouping-sensitive, so it is bit-exact only on the
same-grid (spare-pool) path and ~1 ulp after a shrink.
"""

import numpy as np
import pytest

from repro import Engine, algorithms
from repro.comm.grid import Grid2D
from repro.core.program import VertexProgram, run_vertex_program
from repro.faults import (
    CheckpointManager,
    ElasticRecovery,
    ElasticUnrecoverable,
    FaultPlan,
    FaultSpec,
    KeepRows,
    PreferSquare,
    SparePool,
    resolve_policy,
    run_elastic_campaign,
    run_elastic_case,
)
from repro.graph import rmat

GRID = Grid2D(R=4, C=3)


def _graph():
    return rmat(7, seed=3)


def _program():
    return VertexProgram(
        name="minlabel",
        init=lambda ids: ids.astype(np.float64),
        along_edge=lambda v, w: v,
        op="min",
    )


#: (name, needs_weights, runner(engine, **kw)) for every elastic-capable
#: algorithm entry point.
ALGOS = {
    "bfs": (False, lambda e, **kw: algorithms.bfs(e, root=0, **kw)),
    "pagerank": (
        False,
        lambda e, **kw: algorithms.pagerank(e, iterations=8, **kw),
    ),
    "cc": (False, lambda e, **kw: algorithms.connected_components(e, **kw)),
    "sssp": (True, lambda e, **kw: algorithms.sssp(e, root=0, **kw)),
    "labelprop": (
        False,
        lambda e, **kw: algorithms.label_propagation(e, **kw),
    ),
    "pointerjump": (
        False,
        lambda e, **kw: algorithms.pointer_jumping(e, **kw),
    ),
    "program": (
        False,
        lambda e, **kw: run_vertex_program(e, _program(), **kw),
    ),
}

MONOTONE = [k for k in ALGOS if k != "pagerank"]


def _engines(name, executor=None):
    needs_weights, runner = ALGOS[name]
    g = _graph()
    if needs_weights:
        g = g.with_random_weights(seed=1, low=0.1, high=1.0)

    def make():
        return Engine(g, grid=GRID, executor=executor)

    return make, runner


def elastic_run(name, policy="prefer-square", specs=None, executor=None):
    """Fault-free reference + elastic crashed run; returns both results."""
    make, runner = _engines(name, executor=executor)
    if specs is None:
        specs = [FaultSpec("crash", 2, rank=5)]
    ref_engine = make()
    ref_engine.attach_checkpoints(CheckpointManager(interval=1))
    ref = runner(ref_engine)

    engine = make()
    engine.attach_checkpoints(CheckpointManager(interval=1))
    engine.attach_faults(FaultPlan(list(specs)), max_retries=2)
    res = runner(engine, elastic=ElasticRecovery(policy=policy))
    return ref, res


class TestShrinkBitIdentity:
    @pytest.mark.parametrize("name", MONOTONE)
    def test_monotone_algorithms_bit_identical(self, name):
        ref, res = elastic_run(name)
        info = res.extra["elastic"]
        assert info["regrids"] == 1
        assert info["final_grid"] == (1, 11)
        assert np.array_equal(ref.values, res.values)

    @pytest.mark.parametrize("name", ["bfs", "cc"])
    def test_extras_survive(self, name):
        ref, res = elastic_run(name)
        if name == "bfs":
            assert np.array_equal(ref.extra["levels"], res.extra["levels"])
        else:
            assert ref.extra["n_components"] == res.extra["n_components"]

    def test_pagerank_shrink_within_ulp(self):
        ref, res = elastic_run("pagerank")
        assert res.extra["elastic"]["regrids"] == 1
        assert np.allclose(ref.values, res.values, rtol=1e-9, atol=1e-12)

    def test_pagerank_spare_bit_exact(self):
        ref, res = elastic_run("pagerank", policy="spare-pool:1")
        info = res.extra["elastic"]
        assert info["regrids"] == 1
        assert info["final_grid"] == (GRID.R, GRID.C)
        assert info["events"][0]["spare"] is True
        assert np.array_equal(ref.values, res.values)


class TestCascadeAndPolicies:
    def test_double_crash_regrids_twice(self):
        specs = [FaultSpec("crash", 2, rank=5), FaultSpec("crash", 3, rank=2)]
        ref, res = elastic_run("bfs", specs=specs)
        info = res.extra["elastic"]
        assert info["regrids"] == 2
        assert [e["to_grid"] for e in info["events"]] == [(1, 11), (2, 5)]
        assert np.array_equal(ref.values, res.values)

    def test_keep_rows_preserves_block_rows(self):
        ref, res = elastic_run("cc", policy="keep-rows")
        info = res.extra["elastic"]
        # 11 survivors, C=3 kept: R' = 11 // 3 = 3, two ranks idle.
        assert info["final_grid"] == (3, 3)
        assert np.array_equal(ref.values, res.values)

    def test_spare_pool_falls_back_when_exhausted(self):
        specs = [FaultSpec("crash", 2, rank=5), FaultSpec("crash", 3, rank=2)]
        ref, res = elastic_run("cc", policy="spare-pool:1", specs=specs)
        info = res.extra["elastic"]
        assert [e["spare"] for e in info["events"]] == [True, False]
        assert info["final_grid"] == (1, 11)
        assert np.array_equal(ref.values, res.values)

    def test_policy_objects_and_specs(self):
        assert isinstance(resolve_policy("prefer-square"), PreferSquare)
        assert isinstance(resolve_policy("keep-rows"), KeepRows)
        pool = resolve_policy("spare-pool:3")
        assert isinstance(pool, SparePool) and pool.spares == 3
        assert resolve_policy(pool) is pool
        with pytest.raises(ValueError, match="unknown grid policy"):
            resolve_policy("round-robin")
        with pytest.raises(ValueError, match="integer"):
            resolve_policy("spare-pool:lots")
        with pytest.raises(ValueError, match="GridPolicy"):
            resolve_policy(7)

    def test_prefer_square_choices(self):
        p = PreferSquare()
        assert p.choose(GRID, 11) == Grid2D(R=1, C=11)
        assert p.choose(GRID, 10) == Grid2D(R=2, C=5)
        assert p.choose(GRID, 9) == Grid2D(R=3, C=3)

    def test_keep_rows_falls_back_below_one_row(self):
        p = KeepRows()
        assert p.choose(Grid2D(R=1, C=4), 2) == Grid2D(R=1, C=2)

    def test_elastic_true_and_string_specs(self):
        # The algorithm-level `elastic=` accepts True and policy strings.
        make, runner = _engines("cc")
        engine = make()
        engine.attach_checkpoints(CheckpointManager(interval=1))
        engine.attach_faults(
            FaultPlan([FaultSpec("crash", 2, rank=5)]), max_retries=2
        )
        res = runner(engine, elastic="keep-rows")
        assert res.extra["elastic"]["policy"] == "keep-rows"


class TestAccounting:
    def test_regrid_lane_and_trace_event(self):
        _, res = elastic_run("bfs")
        info = res.extra["elastic"]
        engine = info["engine"]
        assert res.timings.regrid > 0
        assert 0 < res.timings.regrid_fraction < 1
        assert float(engine.clocks.regrid_total) == pytest.approx(
            res.timings.regrid
        )
        regrids = [
            e for e in engine.fault_events if e.get("kind") == "regrid"
        ]
        assert len(regrids) == 1
        (event,) = regrids
        assert event["from_grid"] == (4, 3)
        assert event["to_grid"] == (1, 11)
        assert event["policy"] == "prefer-square"
        assert event["recovery_s"] > 0
        crashes = [
            e for e in engine.fault_events if e.get("kind") == "crash"
        ]
        assert crashes, "the original crash event must survive the rebuild"

    def test_spare_charges_less_than_shrink(self):
        _, shrink = elastic_run("cc")
        _, spare = elastic_run("cc", policy="spare-pool:1")
        assert 0 < spare.timings.regrid < shrink.timings.regrid

    def test_cross_executor_identical(self):
        ref_s, res_s = elastic_run("bfs", executor="serial")
        ref_t, res_t = elastic_run("bfs", executor="threads:4")
        assert np.array_equal(res_s.values, res_t.values)
        assert np.array_equal(ref_s.values, res_s.values)
        assert res_s.timings.regrid == pytest.approx(res_t.timings.regrid)


class TestUnrecoverable:
    def test_no_checkpoint_manager(self):
        make, runner = _engines("bfs")
        engine = make()
        engine.attach_faults(
            FaultPlan([FaultSpec("crash", 2, rank=5)]), max_retries=2
        )
        with pytest.raises(ElasticUnrecoverable, match="no checkpoint"):
            runner(engine, elastic=True)

    def test_regrid_budget_exhausted(self):
        make, runner = _engines("bfs")
        engine = make()
        engine.attach_checkpoints(CheckpointManager(interval=1))
        engine.attach_faults(
            FaultPlan(
                [FaultSpec("crash", 2, rank=5), FaultSpec("crash", 3, rank=2)]
            ),
            max_retries=2,
        )
        with pytest.raises(ElasticUnrecoverable, match="budget"):
            runner(engine, elastic=ElasticRecovery(max_regrids=1))

    def test_recovery_config_validated(self):
        with pytest.raises(ValueError, match="regrid_bw"):
            ElasticRecovery(regrid_bw=0)
        with pytest.raises(ValueError, match="max_regrids"):
            ElasticRecovery(max_regrids=0)
        with pytest.raises(ValueError, match="spares"):
            SparePool(spares=-1)


class TestEngineSeams:
    def test_rebuild_on_grid_carries_state(self):
        engine = Engine(_graph(), grid=GRID)
        algorithms.pagerank(engine, iterations=2)
        comm_before = engine.clocks.comm.max()
        new = engine.rebuild_on_grid(Grid2D(R=2, C=5))
        assert new.n_ranks == 10
        assert new.counters.state_dict() == engine.counters.state_dict()
        # Clocks align to the BSP rendezvous: every new rank at the peak.
        assert np.all(new.clocks.comm == comm_before)

    def test_attach_faults_rejects_out_of_range_rank(self):
        engine = Engine(_graph(), grid=GRID)
        with pytest.raises(ValueError, match="rank=12"):
            engine.attach_faults(
                FaultPlan([FaultSpec("crash", 2, rank=12)])
            )


class TestCampaign:
    def test_case_grades_regridded(self):
        def make():
            return Engine(_graph(), grid=GRID)

        case = run_elastic_case(make, "CC", "crash-shrink")
        assert case.status == "regridded"
        assert case.ok
        assert case.values_equal is True
        assert case.n_regrids == 1
        assert case.grid_trail == [(4, 3), (1, 11)]
        assert case.regrid_s > 0

    def test_campaign_all_green(self):
        def make():
            return Engine(_graph(), grid=GRID)

        report = run_elastic_campaign(make, algos=("BFS",))
        assert report["schema"] == "repro.faults.elastic.v1"
        assert report["total"] == 4
        assert report["failed"] == 0
        assert report["unrecovered"] == 0
        assert report["regrids"] == 5

    def test_unknown_names_rejected(self):
        def make():
            return Engine(_graph(), grid=GRID)

        with pytest.raises(ValueError, match="unknown algorithm"):
            run_elastic_case(make, "NOPE", "crash-shrink")
        with pytest.raises(ValueError, match="unknown elastic scenario"):
            run_elastic_case(make, "BFS", "nope")
