"""Batched traversals resume from checkpoints bit-identically per lane."""

import numpy as np
import pytest

from repro import Engine
from repro.algorithms.batch import bfs_batch, pagerank_batch, sssp_batch
from repro.faults import CheckpointManager, FaultPlan, FaultSpec, RankFailure
from repro.graph import rmat

GRAPH = rmat(8, edgefactor=8, seed=5)
WGRAPH = GRAPH.with_random_weights(seed=9)
ROOTS = [0, 3, 17, 42]

CASES = {
    "bfs_batch": (
        GRAPH,
        lambda e, r=False: bfs_batch(e, ROOTS, resume=r),
    ),
    "sssp_batch": (
        WGRAPH,
        lambda e, r=False: sssp_batch(e, ROOTS, resume=r),
    ),
    "pagerank_batch": (
        GRAPH,
        lambda e, r=False: pagerank_batch(e, ROOTS, iterations=8, resume=r),
    ),
}


def _engine(graph, plan=None):
    engine = Engine(graph, 4)
    engine.attach_checkpoints(CheckpointManager(interval=1))
    if plan is not None:
        engine.attach_faults(plan, max_retries=2)
    return engine


class TestCrashResumeBitIdentity:
    @pytest.mark.parametrize("name", sorted(CASES))
    def test_crash_then_resume_matches_fault_free(self, name):
        graph, run = CASES[name]
        ref_engine = _engine(graph)
        ref = run(ref_engine)

        engine = _engine(
            graph, plan=FaultPlan([FaultSpec("crash", 2, rank=1)])
        )
        with pytest.raises(RankFailure):
            run(engine)
        result = run(engine, True)

        # Per-lane values, counters, and every per-rank clock lane must
        # match the fault-free run exactly.
        assert np.array_equal(ref.values, result.values)
        assert ref_engine.counters.summary() == engine.counters.summary()
        ref_lanes = ref_engine.clocks.per_rank_lanes()
        lanes = engine.clocks.per_rank_lanes()
        for lane in ref_lanes:
            assert np.array_equal(ref_lanes[lane], lanes[lane]), lane
        assert np.array_equal(ref_engine.clocks.clock, engine.clocks.clock)

    @pytest.mark.parametrize("name", sorted(CASES))
    def test_per_lane_payloads_match(self, name):
        """Each lane of the batch individually survives the resume."""
        graph, run = CASES[name]
        ref = run(_engine(graph))
        engine = _engine(
            graph, plan=FaultPlan([FaultSpec("crash", 2, rank=1)])
        )
        with pytest.raises(RankFailure):
            run(engine)
        result = run(engine, True)
        for lane in range(len(ROOTS)):
            assert np.array_equal(
                ref.values[:, lane], result.values[:, lane]
            ), f"lane {lane}"


class TestResumeGuards:
    def test_bfs_resume_rejects_root_mismatch(self):
        engine = _engine(
            GRAPH, plan=FaultPlan([FaultSpec("crash", 2, rank=1)])
        )
        with pytest.raises(RankFailure):
            bfs_batch(engine, ROOTS)
        with pytest.raises(ValueError, match="roots"):
            bfs_batch(engine, [0, 3, 17, 99], resume=True)

    def test_sssp_resume_rejects_source_mismatch(self):
        engine = _engine(
            WGRAPH, plan=FaultPlan([FaultSpec("crash", 2, rank=1)])
        )
        with pytest.raises(RankFailure):
            sssp_batch(engine, ROOTS)
        with pytest.raises(ValueError, match="sources"):
            sssp_batch(engine, [0, 3], resume=True)

    def test_pagerank_resume_rejects_seed_mismatch(self):
        engine = _engine(
            GRAPH, plan=FaultPlan([FaultSpec("crash", 2, rank=1)])
        )
        with pytest.raises(RankFailure):
            pagerank_batch(engine, ROOTS, iterations=8)
        with pytest.raises(ValueError, match="seeds"):
            pagerank_batch(engine, [3, 0, 17, 42], iterations=8, resume=True)

    def test_resume_without_checkpoint_starts_fresh(self):
        """resume=True with no checkpoint manager degrades to a normal
        cold start, matching a fresh run bit-for-bit."""
        ref = bfs_batch(Engine(GRAPH, 4), ROOTS)
        out = bfs_batch(Engine(GRAPH, 4), ROOTS, resume=True)
        assert np.array_equal(ref.values, out.values)
