"""FaultPlan/FaultSpec: validation and seeded determinism."""

from __future__ import annotations

import pytest

from repro.faults import FAULT_KINDS, FaultPlan, FaultSpec


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("meteor", 1)

    def test_superstep_must_be_positive(self):
        with pytest.raises(ValueError, match="superstep"):
            FaultSpec("transient", 0)

    def test_crash_needs_rank(self):
        with pytest.raises(ValueError, match="explicit rank"):
            FaultSpec("crash", 1)

    def test_straggler_needs_positive_delay(self):
        with pytest.raises(ValueError, match="delay_s"):
            FaultSpec("straggler", 1, rank=0)

    def test_count_must_be_positive(self):
        with pytest.raises(ValueError, match="count"):
            FaultSpec("transient", 1, count=0)

    def test_negative_rank_rejected(self):
        with pytest.raises(ValueError, match="rank"):
            FaultSpec("transient", 1, rank=-1)

    def test_memflip_needs_rank(self):
        with pytest.raises(ValueError, match="explicit rank"):
            FaultSpec("memflip", 1)

    def test_memflip_rejects_collective(self):
        with pytest.raises(ValueError, match="collective"):
            FaultSpec("memflip", 1, rank=0, collective="allreduce")

    def test_recover_rejects_explicit_rank(self):
        with pytest.raises(ValueError, match="rank"):
            FaultSpec("recover", 1, rank=2)

    def test_negative_bit_rejected(self):
        with pytest.raises(ValueError, match="bit"):
            FaultSpec("memflip", 1, rank=0, bit=-1)


class TestValidationMessages:
    """Every FaultSpec error names the offending field *first* and,
    where choices matter, quotes them in FAULT_KINDS documentation
    order."""

    DOC_ORDER = "crash, transient, corruption, straggler, recover, memflip"

    @pytest.mark.parametrize(
        "field,ctor",
        [
            ("kind", lambda: FaultSpec("meteor", 1)),
            ("superstep", lambda: FaultSpec("transient", 0)),
            ("count", lambda: FaultSpec("transient", 1, count=0)),
            ("bit", lambda: FaultSpec("corruption", 1, bit=-3)),
            ("delay_s", lambda: FaultSpec("straggler", 1, rank=0)),
            ("rank", lambda: FaultSpec("crash", 1)),
            ("rank", lambda: FaultSpec("memflip", 1)),
            ("rank", lambda: FaultSpec("recover", 1, rank=0)),
            ("rank", lambda: FaultSpec("transient", 1, rank=-1)),
            (
                "collective",
                lambda: FaultSpec("memflip", 1, rank=0, collective="bcast"),
            ),
            (
                "collective",
                lambda: FaultSpec("recover", 1, collective="bcast"),
            ),
        ],
    )
    def test_field_named_first(self, field, ctor):
        with pytest.raises(ValueError) as ei:
            ctor()
        assert str(ei.value).startswith(f"{field}:")

    def test_unknown_kind_lists_all_choices_in_doc_order(self):
        with pytest.raises(ValueError) as ei:
            FaultSpec("meteor", 1)
        msg = str(ei.value)
        assert "unknown fault kind 'meteor'" in msg
        assert self.DOC_ORDER in msg

    def test_ranked_kinds_listed_in_doc_order(self):
        with pytest.raises(ValueError) as ei:
            FaultSpec("memflip", 1)
        # _RANKED_KINDS rendered in FAULT_KINDS order, not tuple order.
        assert "crash, straggler, memflip" in str(ei.value)

    def test_boundary_kinds_listed_in_doc_order(self):
        with pytest.raises(ValueError) as ei:
            FaultSpec("memflip", 1, rank=0, collective="allgatherv")
        assert "recover, memflip" in str(ei.value)


class TestFaultPlan:
    def test_specs_sorted_by_superstep(self):
        plan = FaultPlan(
            [
                FaultSpec("transient", 5),
                FaultSpec("crash", 2, rank=0),
                FaultSpec("corruption", 1),
            ]
        )
        assert [s.superstep for s in plan] == [1, 2, 5]

    def test_random_is_seed_deterministic(self):
        a = FaultPlan.random(seed=7, n_supersteps=50, n_ranks=16,
                             crash_rate=0.05, transient_rate=0.3,
                             corruption_rate=0.2, straggler_rate=0.3)
        b = FaultPlan.random(seed=7, n_supersteps=50, n_ranks=16,
                             crash_rate=0.05, transient_rate=0.3,
                             corruption_rate=0.2, straggler_rate=0.3)
        assert a.specs == b.specs
        assert len(a) > 0

    def test_random_seeds_differ(self):
        a = FaultPlan.random(seed=1, n_supersteps=50, n_ranks=16)
        b = FaultPlan.random(seed=2, n_supersteps=50, n_ranks=16)
        assert a.specs != b.specs

    def test_random_caps_crashes(self):
        plan = FaultPlan.random(
            seed=3, n_supersteps=100, n_ranks=4, crash_rate=1.0, max_crashes=2
        )
        assert sum(1 for s in plan if s.kind == "crash") == 2

    def test_random_kinds_valid(self):
        plan = FaultPlan.random(seed=9, n_supersteps=30, n_ranks=8,
                                crash_rate=0.1, transient_rate=0.5,
                                corruption_rate=0.5, straggler_rate=0.5)
        assert all(s.kind in FAULT_KINDS for s in plan)

    @pytest.mark.parametrize(
        "field,rate", [
            ("crash_rate", -0.1),
            ("crash_rate", 1.5),
            ("transient_rate", 2.0),
            ("corruption_rate", -1.0),
            ("straggler_rate", 1.0001),
        ],
    )
    def test_random_rejects_bad_rates(self, field, rate):
        # The error names the offending field and its value.
        with pytest.raises(ValueError, match=f"{field}.*{rate}"):
            FaultPlan.random(seed=0, n_supersteps=10, n_ranks=4,
                             **{field: rate})

    def test_random_rejects_negative_supersteps(self):
        with pytest.raises(ValueError, match="n_supersteps.*-1"):
            FaultPlan.random(seed=0, n_supersteps=-1, n_ranks=4)

    def test_random_rejects_bad_rank_count(self):
        with pytest.raises(ValueError, match="n_ranks.*0"):
            FaultPlan.random(seed=0, n_supersteps=10, n_ranks=0)

    def test_random_rejects_bad_straggler_delay(self):
        with pytest.raises(ValueError, match="straggler_delay_s"):
            FaultPlan.random(seed=0, n_supersteps=10, n_ranks=4,
                             straggler_rate=0.5, straggler_delay_s=0.0)

    def test_random_rejects_negative_max_crashes(self):
        with pytest.raises(ValueError, match="max_crashes.*-2"):
            FaultPlan.random(seed=0, n_supersteps=10, n_ranks=4,
                             max_crashes=-2)

    def test_random_draws_memflips(self):
        plan = FaultPlan.random(
            seed=11, n_supersteps=20, n_ranks=4,
            transient_rate=0.0, corruption_rate=0.0, straggler_rate=0.0,
            memflip_rate=1.0,
        )
        flips = [s for s in plan if s.kind == "memflip"]
        assert len(flips) == 20
        assert all(s.rank is not None and 0 <= s.rank < 4 for s in flips)
        assert all(0 <= s.bit < 4096 for s in flips)
        again = FaultPlan.random(
            seed=11, n_supersteps=20, n_ranks=4,
            transient_rate=0.0, corruption_rate=0.0, straggler_rate=0.0,
            memflip_rate=1.0,
        )
        assert plan.specs == again.specs

    def test_random_rejects_bad_memflip_rate(self):
        with pytest.raises(ValueError, match="memflip_rate.*1.5"):
            FaultPlan.random(seed=0, n_supersteps=10, n_ranks=4,
                             memflip_rate=1.5)

    def test_for_superstep_filters(self):
        plan = FaultPlan(
            [FaultSpec("transient", 2), FaultSpec("corruption", 4)]
        )
        assert [s.kind for s in plan.for_superstep(2)] == ["transient"]
        assert plan.for_superstep(3) == []

    def test_describe_mentions_every_spec(self):
        plan = FaultPlan(
            [
                FaultSpec("crash", 2, rank=1),
                FaultSpec("straggler", 3, rank=0, delay_s=1e-3),
            ]
        )
        text = plan.describe()
        assert "superstep 2" in text and "crash" in text
        assert "superstep 3" in text and "stall" in text
        assert FaultPlan([]).describe() == "(no faults planned)"

    def test_describe_memflip(self):
        text = FaultPlan(
            [FaultSpec("memflip", 4, rank=2, bit=137, count=3)]
        ).describe()
        assert "superstep 4" in text
        assert "3 state bit(s) flip from bit 137" in text
        assert "rank 2" in text
