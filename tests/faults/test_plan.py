"""FaultPlan/FaultSpec: validation and seeded determinism."""

from __future__ import annotations

import pytest

from repro.faults import FAULT_KINDS, FaultPlan, FaultSpec


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("meteor", 1)

    def test_superstep_must_be_positive(self):
        with pytest.raises(ValueError, match="superstep"):
            FaultSpec("transient", 0)

    def test_crash_needs_rank(self):
        with pytest.raises(ValueError, match="explicit rank"):
            FaultSpec("crash", 1)

    def test_straggler_needs_positive_delay(self):
        with pytest.raises(ValueError, match="delay_s"):
            FaultSpec("straggler", 1, rank=0)

    def test_count_must_be_positive(self):
        with pytest.raises(ValueError, match="count"):
            FaultSpec("transient", 1, count=0)

    def test_negative_rank_rejected(self):
        with pytest.raises(ValueError, match="rank"):
            FaultSpec("transient", 1, rank=-1)


class TestFaultPlan:
    def test_specs_sorted_by_superstep(self):
        plan = FaultPlan(
            [
                FaultSpec("transient", 5),
                FaultSpec("crash", 2, rank=0),
                FaultSpec("corruption", 1),
            ]
        )
        assert [s.superstep for s in plan] == [1, 2, 5]

    def test_random_is_seed_deterministic(self):
        a = FaultPlan.random(seed=7, n_supersteps=50, n_ranks=16,
                             crash_rate=0.05, transient_rate=0.3,
                             corruption_rate=0.2, straggler_rate=0.3)
        b = FaultPlan.random(seed=7, n_supersteps=50, n_ranks=16,
                             crash_rate=0.05, transient_rate=0.3,
                             corruption_rate=0.2, straggler_rate=0.3)
        assert a.specs == b.specs
        assert len(a) > 0

    def test_random_seeds_differ(self):
        a = FaultPlan.random(seed=1, n_supersteps=50, n_ranks=16)
        b = FaultPlan.random(seed=2, n_supersteps=50, n_ranks=16)
        assert a.specs != b.specs

    def test_random_caps_crashes(self):
        plan = FaultPlan.random(
            seed=3, n_supersteps=100, n_ranks=4, crash_rate=1.0, max_crashes=2
        )
        assert sum(1 for s in plan if s.kind == "crash") == 2

    def test_random_kinds_valid(self):
        plan = FaultPlan.random(seed=9, n_supersteps=30, n_ranks=8,
                                crash_rate=0.1, transient_rate=0.5,
                                corruption_rate=0.5, straggler_rate=0.5)
        assert all(s.kind in FAULT_KINDS for s in plan)

    @pytest.mark.parametrize(
        "field,rate", [
            ("crash_rate", -0.1),
            ("crash_rate", 1.5),
            ("transient_rate", 2.0),
            ("corruption_rate", -1.0),
            ("straggler_rate", 1.0001),
        ],
    )
    def test_random_rejects_bad_rates(self, field, rate):
        # The error names the offending field and its value.
        with pytest.raises(ValueError, match=f"{field}.*{rate}"):
            FaultPlan.random(seed=0, n_supersteps=10, n_ranks=4,
                             **{field: rate})

    def test_random_rejects_negative_supersteps(self):
        with pytest.raises(ValueError, match="n_supersteps.*-1"):
            FaultPlan.random(seed=0, n_supersteps=-1, n_ranks=4)

    def test_random_rejects_bad_rank_count(self):
        with pytest.raises(ValueError, match="n_ranks.*0"):
            FaultPlan.random(seed=0, n_supersteps=10, n_ranks=0)

    def test_random_rejects_bad_straggler_delay(self):
        with pytest.raises(ValueError, match="straggler_delay_s"):
            FaultPlan.random(seed=0, n_supersteps=10, n_ranks=4,
                             straggler_rate=0.5, straggler_delay_s=0.0)

    def test_random_rejects_negative_max_crashes(self):
        with pytest.raises(ValueError, match="max_crashes.*-2"):
            FaultPlan.random(seed=0, n_supersteps=10, n_ranks=4,
                             max_crashes=-2)

    def test_for_superstep_filters(self):
        plan = FaultPlan(
            [FaultSpec("transient", 2), FaultSpec("corruption", 4)]
        )
        assert [s.kind for s in plan.for_superstep(2)] == ["transient"]
        assert plan.for_superstep(3) == []

    def test_describe_mentions_every_spec(self):
        plan = FaultPlan(
            [
                FaultSpec("crash", 2, rank=1),
                FaultSpec("straggler", 3, rank=0, delay_s=1e-3),
            ]
        )
        text = plan.describe()
        assert "superstep 2" in text and "crash" in text
        assert "superstep 3" in text and "stall" in text
        assert FaultPlan([]).describe() == "(no faults planned)"
