"""FaultInjector + ResilientCommunicator: the fault protocol itself."""

import numpy as np
import pytest

from repro import Engine, algorithms
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RankFailure,
)
from repro.graph import rmat


def small_engine(scale=7, seed=3, n_ranks=4):
    return Engine(rmat(scale, seed=seed), n_ranks)


class TestInjectorStateMachine:
    def test_crash_is_consumed_once(self):
        inj = FaultInjector(FaultPlan([FaultSpec("crash", 2, rank=1)]))
        inj.begin_superstep(2)
        spec = inj.crash_among("allreduce", [0, 1, 2, 3])
        assert spec is not None and spec.rank == 1
        # consumed: the replaced rank does not crash again
        assert inj.crash_among("allreduce", [0, 1, 2, 3]) is None

    def test_crash_waits_for_its_superstep(self):
        inj = FaultInjector(FaultPlan([FaultSpec("crash", 3, rank=0)]))
        inj.begin_superstep(2)
        assert inj.crash_among("allreduce", [0, 1]) is None
        inj.begin_superstep(4)  # persists past its superstep
        assert inj.crash_among("allreduce", [0, 1]) is not None

    def test_crash_needs_rank_in_group(self):
        inj = FaultInjector(FaultPlan([FaultSpec("crash", 1, rank=3)]))
        assert inj.crash_among("allreduce", [0, 1]) is None
        assert inj.crash_among("allreduce", [2, 3]) is not None

    def test_transient_consumes_count_attempts(self):
        inj = FaultInjector(FaultPlan([FaultSpec("transient", 1, count=2)]))
        assert inj.next_disruption("allreduce", [0, 1]) is not None
        assert inj.next_disruption("allreduce", [0, 1]) is not None
        assert inj.next_disruption("allreduce", [0, 1]) is None

    def test_disruption_only_at_exact_superstep(self):
        inj = FaultInjector(FaultPlan([FaultSpec("transient", 2)]))
        assert inj.next_disruption("allreduce", [0]) is None  # superstep 1
        inj.begin_superstep(2)
        assert inj.next_disruption("allreduce", [0]) is not None

    def test_collective_filter(self):
        inj = FaultInjector(
            FaultPlan([FaultSpec("transient", 1, collective="alltoallv")])
        )
        assert inj.next_disruption("allreduce", [0]) is None
        assert inj.next_disruption("alltoallv", [0]) is not None

    def test_straggler_fires_once_at_exact_superstep(self):
        inj = FaultInjector(
            FaultPlan([FaultSpec("straggler", 2, rank=0, delay_s=1e-3)])
        )
        assert inj.stragglers_for("allreduce", [0, 1]) == []
        inj.begin_superstep(2)
        fired = inj.stragglers_for("allreduce", [0, 1])
        assert len(fired) == 1 and fired[0].rank == 0
        assert inj.stragglers_for("allreduce", [0, 1]) == []

    def test_reset_rearms_plan(self):
        plan = FaultPlan(
            [
                FaultSpec("crash", 1, rank=0),
                FaultSpec("transient", 1, count=1),
                FaultSpec("straggler", 1, rank=1, delay_s=1e-3),
            ]
        )
        inj = FaultInjector(plan)
        inj.crash_among("allreduce", [0])
        inj.next_disruption("allreduce", [0])
        inj.stragglers_for("allreduce", [0, 1])
        assert inj.exhausted
        inj.reset()
        assert not inj.exhausted
        assert inj.superstep == 1
        assert inj.crash_among("allreduce", [0]) is not None

    def test_rank_failure_carries_diagnostics(self):
        err = RankFailure(2, 5, "alltoallv", fault_kind="transient", retries=3)
        assert (err.rank, err.superstep, err.collective) == (2, 5, "alltoallv")
        assert err.fault_kind == "transient" and err.retries == 3
        msg = str(err)
        assert "rank 2" in msg and "superstep 5" in msg
        assert "alltoallv" in msg and "3 retries" in msg


class TestResilientProtocol:
    def test_transient_retries_charge_recovery_lane(self):
        engine = small_engine()
        engine.attach_faults(FaultPlan([FaultSpec("transient", 1, count=2)]))
        algorithms.pagerank(engine, iterations=2)
        events = engine.fault_events
        assert [e["retries"] for e in events] == [1, 2]
        assert engine.clocks.recovery_total > 0
        # exponential backoff: retry 2 costs double retry 1
        assert events[1]["recovery_s"] == pytest.approx(
            2 * events[0]["recovery_s"]
        )

    def test_retries_do_not_inflate_comm_counters(self):
        ref = small_engine()
        algorithms.pagerank(ref, iterations=2)
        engine = small_engine()
        engine.attach_faults(FaultPlan([FaultSpec("transient", 1, count=3)]))
        algorithms.pagerank(engine, iterations=2)
        assert ref.counters.summary() == engine.counters.summary()

    def test_exhausted_retries_escalate_to_rank_failure(self):
        engine = small_engine()
        engine.attach_faults(
            FaultPlan([FaultSpec("transient", 1, count=99)]), max_retries=2
        )
        with pytest.raises(RankFailure) as exc:
            algorithms.pagerank(engine, iterations=2)
        assert exc.value.fault_kind == "transient"
        assert exc.value.retries == 3  # max_retries + the failing attempt
        assert engine.fault_events[-1]["fatal"] is True

    def test_corruption_detected_via_checksum(self):
        engine = small_engine()
        engine.attach_faults(FaultPlan([FaultSpec("corruption", 1, bit=5)]))
        res = algorithms.pagerank(engine, iterations=2)
        events = [e for e in engine.fault_events if e["kind"] == "corruption"]
        assert len(events) == 1 and events[0]["detected"] is True
        # the retried run still converges to the fault-free answer
        ref = algorithms.pagerank(small_engine(), iterations=2)
        assert np.array_equal(res.values, ref.values)

    def test_straggler_stalls_group_clock(self):
        delay = 2e-3
        ref = small_engine()
        algorithms.bfs(ref, root=0)
        engine = small_engine()
        engine.attach_faults(
            FaultPlan([FaultSpec("straggler", 1, rank=0, delay_s=delay)])
        )
        res = algorithms.bfs(engine, root=0)
        assert np.array_equal(
            res.values, algorithms.bfs(small_engine(), root=0).values
        )
        # the stall lands in the recovery lane and drags the makespan
        # (not necessarily by the full delay — idle time absorbs some)
        assert engine.clocks.recovery_total == pytest.approx(delay)
        assert engine.clocks.elapsed > ref.clocks.elapsed

    def test_crash_raises_before_charging(self):
        engine = small_engine()
        engine.attach_faults(FaultPlan([FaultSpec("crash", 1, rank=0)]))
        with pytest.raises(RankFailure) as exc:
            algorithms.bfs(engine, root=0)
        assert exc.value.fault_kind == "crash" and exc.value.rank == 0
        # the aborted collective must not have charged anything beyond
        # what the run had already accumulated at the previous boundary
        assert engine.fault_events[-1]["fatal"] is True

    def test_reset_timers_rearms_injector(self):
        engine = small_engine()
        engine.attach_faults(FaultPlan([FaultSpec("transient", 1, count=1)]))
        algorithms.pagerank(engine, iterations=1)
        assert len(engine.fault_events) == 1
        algorithms.pagerank(engine, iterations=1)  # reset_timers re-arms
        assert len(engine.fault_events) == 1

    def test_detach_faults_restores_plain_communicator(self):
        engine = small_engine()
        engine.attach_faults(FaultPlan([FaultSpec("crash", 1, rank=0)]))
        engine.detach_faults()
        res = algorithms.bfs(engine, root=0)  # no crash
        assert res.values is not None
