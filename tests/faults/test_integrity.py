"""SDC defense: memflip injection, integrity ledger, certifiers, repair.

Covers the three layers of ``repro.faults.integrity`` plus the graded
campaign behind ``python -m repro faults --sdc``:

* :func:`apply_memflip` mechanics (deterministic, one-shot, windowed);
* :class:`IntegrityLedger` detection — including a Hypothesis sweep
  proving every single-bit flip in any replicated window is caught
  (no false negatives) and clean runs never trip it (no false
  positives), on both executors;
* per-algorithm certifiers sealing correct results and naming the
  violated invariant on corrupted ones;
* detect -> rollback -> recompute repair that is bit-identical to the
  fault-free run, with budget/no-checkpoint failure modes;
* the campaign report schema and the CLI wiring.
"""

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Engine, algorithms
from repro.cli import main
from repro.exec import SerialExecutor, ThreadedExecutor
from repro.faults import (
    SDC_SCENARIOS,
    CheckpointManager,
    FaultPlan,
    FaultSpec,
    IntegrityFailure,
    IntegrityLedger,
    IntegrityViolation,
    apply_memflip,
    certify_bfs,
    certify_cc,
    certify_pagerank,
    certify_sssp,
    run_sdc_campaign,
    run_sdc_case,
)
from repro.graph import rmat

GRAPH = rmat(7, seed=3)
WGRAPH = rmat(7, seed=3).with_random_weights(seed=1)

MODES = {
    "serial": SerialExecutor,
    "threads4": lambda: ThreadedExecutor(max_workers=4),
}


def mk(mode="serial"):
    return Engine(GRAPH, 4, executor=MODES[mode]())


def mkw(mode="serial"):
    return Engine(WGRAPH, 4, executor=MODES[mode]())


def _seed_state(engine, seed=0, dtype=np.float64, width=None):
    """Register one coherent replicated state array on every rank.

    Builds a global per-vertex vector and scatters it into each rank's
    local coordinate space via the localmap, exactly as a real
    exchange leaves it: row-group replicas agree on row windows,
    col-group replicas on column windows.
    """
    rng = np.random.default_rng(seed)
    n = engine.graph.n_vertices
    shape = (n,) if width is None else (n, width)
    if np.issubdtype(np.dtype(dtype), np.floating):
        base = rng.standard_normal(shape).astype(dtype)
    else:
        base = rng.integers(-1000, 1000, shape).astype(dtype)
    for ctx in engine.contexts:
        lm = ctx.localmap
        arr = np.zeros((lm.n_total,) + shape[1:], dtype=dtype)
        row_lids = np.arange(lm.row_slice.start, lm.row_slice.stop)
        col_lids = np.arange(lm.col_slice.start, lm.col_slice.stop)
        arr[lm.row_slice] = base[lm.row_gid(row_lids)]
        arr[lm.col_slice] = base[lm.col_gid(col_lids)]
        ctx.arrays.clear()
        ctx.arrays["x"] = arr
    return base


class TestApplyMemflip:
    def test_flip_is_deterministic_and_self_inverse(self):
        engine = mk()
        _seed_state(engine)
        ctx = engine.contexts[1]
        before = ctx.arrays["x"].copy()
        spec = FaultSpec("memflip", 1, rank=1, bit=137)
        assert apply_memflip(ctx, spec) == 1
        assert not np.array_equal(ctx.arrays["x"], before)
        # XOR is an involution: the same flip restores the state.
        assert apply_memflip(ctx, spec) == 1
        assert np.array_equal(ctx.arrays["x"], before)

    def test_flip_lands_only_in_owned_windows(self):
        engine = mk()
        _seed_state(engine)
        ctx = engine.contexts[1]
        before = ctx.arrays["x"].copy()
        apply_memflip(ctx, FaultSpec("memflip", 1, rank=1, bit=7))
        changed = np.flatnonzero(ctx.arrays["x"] != before)
        assert len(changed) == 1
        owned = set(range(*ctx.row_slice.indices(len(before)))) | set(
            range(*ctx.col_slice.indices(len(before)))
        )
        assert int(changed[0]) in owned

    def test_burst_flips_count_bits(self):
        engine = mk()
        _seed_state(engine)
        ctx = engine.contexts[2]
        before = ctx.arrays["x"].copy()
        flipped = apply_memflip(
            ctx, FaultSpec("memflip", 1, rank=2, bit=4099, count=3)
        )
        assert flipped == 3
        assert not np.array_equal(ctx.arrays["x"], before)

    def test_bit_index_wraps(self):
        engine = mk()
        _seed_state(engine)
        ctx = engine.contexts[0]
        total_bits = sum(
            s.nbytes * 8
            for s in (
                ctx.arrays["x"][ctx.row_slice],
                ctx.arrays["x"][ctx.col_slice],
            )
        )
        a = ctx.arrays["x"].copy()
        apply_memflip(ctx, FaultSpec("memflip", 1, rank=0, bit=5))
        flipped_small = ctx.arrays["x"].copy()
        ctx.arrays["x"][:] = a
        apply_memflip(
            ctx, FaultSpec("memflip", 1, rank=0, bit=5 + total_bits)
        )
        assert np.array_equal(ctx.arrays["x"], flipped_small)

    def test_no_state_flips_nothing(self):
        engine = mk()
        for ctx in engine.contexts:
            ctx.arrays.clear()
        assert (
            apply_memflip(
                engine.contexts[1], FaultSpec("memflip", 1, rank=1)
            )
            == 0
        )


class TestLedgerUnit:
    def test_bad_interval_and_budget_rejected(self):
        with pytest.raises(ValueError, match="interval"):
            IntegrityLedger(interval=0)
        with pytest.raises(ValueError, match="repair_budget"):
            IntegrityLedger(repair_budget=-1)

    def test_clean_boundary_appends_ok_row_and_charges(self):
        engine = mk()
        _seed_state(engine)
        ledger = IntegrityLedger()
        row = ledger.on_boundary(engine, 1)
        assert row is not None and row.ok and row.suspects == ()
        assert ledger.last_good == 1
        assert engine.clocks.certify_total > 0.0
        # The charge lands in the certify lane, not compute/comm.
        assert engine.timing_report().certify > 0.0

    def test_interval_skips_off_boundaries(self):
        engine = mk()
        _seed_state(engine)
        ledger = IntegrityLedger(interval=3)
        assert ledger.on_boundary(engine, 1) is None
        assert ledger.on_boundary(engine, 2) is None
        assert ledger.on_boundary(engine, 3) is not None
        # A due checkpoint forces verification regardless of interval.
        assert ledger.on_boundary(engine, 4, checkpoint_due=True) is not None

    def test_corruption_without_checkpoint_is_unrepairable(self):
        engine = mk()
        _seed_state(engine)
        apply_memflip(
            engine.contexts[1], FaultSpec("memflip", 1, rank=1, bit=3)
        )
        ledger = IntegrityLedger()
        with pytest.raises(IntegrityFailure, match="no verified checkpoint"):
            ledger.on_boundary(engine, 1)
        assert ledger.repairs == 1
        ev = engine.fault_events[-1]
        assert ev["kind"] == "integrity" and ev["detected"] is True

    def test_budget_exhaustion_is_fatal(self):
        engine = mk()
        _seed_state(engine)
        ledger = IntegrityLedger(repair_budget=0)
        apply_memflip(
            engine.contexts[1], FaultSpec("memflip", 1, rank=1, bit=3)
        )
        with pytest.raises(IntegrityFailure, match="budget exhausted"):
            ledger.on_boundary(engine, 1)
        assert engine.fault_events[-1]["fatal"] is True

    def test_violation_carries_suspects_and_window(self):
        engine = mk()
        _seed_state(engine)
        engine.attach_checkpoints(CheckpointManager(interval=1))
        engine.checkpoints.save(engine, 1, "unit", {})
        ledger = IntegrityLedger()
        assert ledger.on_boundary(engine, 1).ok
        apply_memflip(
            engine.contexts[1], FaultSpec("memflip", 2, rank=1, bit=3)
        )
        with pytest.raises(IntegrityViolation) as ei:
            ledger.on_boundary(engine, 2)
        exc = ei.value
        assert 1 in exc.suspects  # the corrupt rank is always a suspect
        assert exc.window == (2, 2)
        assert exc.fault_kind == "integrity"
        ev = engine.fault_events[-1]
        assert ev["suspects"] == list(exc.suspects)
        assert ev["window"] == [2, 2]

    def test_rewind_drops_rows_but_keeps_budget_consumption(self):
        ledger = IntegrityLedger()
        engine = mk()
        _seed_state(engine)
        for step in (1, 2, 3):
            ledger.on_boundary(engine, step)
        ledger.repairs = 1
        ledger.rewind(1)
        assert [r.superstep for r in ledger.rows] == [1]
        assert ledger.last_good == 1
        assert ledger.repairs == 1  # per run, not per attempt
        ledger.reset()
        assert ledger.rows == [] and ledger.repairs == 0


DTYPES = [np.float64, np.float32, np.int64, np.int32]

_HYP_ENGINES = {}


def _hyp_engine(mode):
    if mode not in _HYP_ENGINES:
        _HYP_ENGINES[mode] = mk(mode)
    return _HYP_ENGINES[mode]


class TestLedgerProperty:
    """No false negatives, no false positives — the ledger's contract."""

    @pytest.mark.parametrize("mode", sorted(MODES))
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        dtype=st.sampled_from(DTYPES),
        width=st.sampled_from([None, 2, 3]),
        rank=st.integers(0, 3),
        bit=st.integers(0, 1 << 20),
        seed=st.integers(0, 10),
    )
    def test_every_single_bit_flip_is_detected(
        self, mode, dtype, width, rank, bit, seed
    ):
        engine = _hyp_engine(mode)
        _seed_state(engine, seed=seed, dtype=dtype, width=width)
        ledger = IntegrityLedger()
        assert ledger.on_boundary(engine, 1).ok
        flipped = apply_memflip(
            engine.contexts[rank],
            FaultSpec("memflip", 2, rank=rank, bit=bit),
        )
        assert flipped == 1
        with pytest.raises((IntegrityViolation, IntegrityFailure)):
            ledger.on_boundary(engine, 2)
        assert rank in ledger.rows[-1].suspects

    @pytest.mark.parametrize("mode", sorted(MODES))
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        dtype=st.sampled_from(DTYPES),
        width=st.sampled_from([None, 2]),
        seed=st.integers(0, 10),
    )
    def test_clean_state_never_trips(self, mode, dtype, width, seed):
        engine = _hyp_engine(mode)
        _seed_state(engine, seed=seed, dtype=dtype, width=width)
        ledger = IntegrityLedger()
        for step in (1, 2):
            row = ledger.on_boundary(engine, step)
            assert row.ok and row.suspects == ()

    @pytest.mark.parametrize("mode", sorted(MODES))
    def test_clean_algorithm_runs_never_trip(self, mode):
        """End-to-end false-positive check: real algorithm state (BFS's
        infs, PR's floats, CC's labels) verifies clean at every
        boundary on both executors."""
        for runner in (
            lambda e: algorithms.bfs(e, root=0),
            lambda e: algorithms.pagerank(e, iterations=5),
            lambda e: algorithms.connected_components(e),
        ):
            engine = mk(mode)
            ledger = IntegrityLedger()
            engine.attach_integrity(ledger)
            runner(engine)
            assert ledger.rows, "ledger never consulted"
            assert all(r.ok for r in ledger.rows)


class TestCertifiers:
    def _bfs(self, engine=None):
        engine = engine or mk()
        res = algorithms.bfs(engine, root=0)
        return engine, res.values, res.extra["levels"]

    def test_bfs_seal_passes_and_charges(self):
        engine, parents, levels = self._bfs()
        before = engine.clocks.certify_total
        report = certify_bfs(engine, parents, levels, root=0)
        assert report.ok and all(report.checks.values())
        assert report.algo == "bfs"
        assert engine.clocks.certify_total > before
        assert report.seconds > 0.0

    def test_bfs_catches_fake_parent_edge(self):
        engine, parents, levels = self._bfs()
        victim = next(
            v for v in range(1, len(parents)) if parents[v] >= 0
        )
        bad = parents.copy()
        bad[victim] = victim  # self-parent: no such edge
        with pytest.raises(IntegrityFailure, match="parent-edge") as ei:
            certify_bfs(engine, bad, levels, root=0)
        assert ei.value.report is not None
        assert ei.value.report.checks["parent-edge"] is False

    def test_bfs_catches_level_skew(self):
        engine, parents, levels = self._bfs()
        victim = next(
            v for v in range(1, len(levels)) if levels[v] > 0
        )
        bad = levels.copy()
        bad[victim] += 1
        with pytest.raises(IntegrityFailure, match="level-consistent"):
            certify_bfs(engine, parents, bad, root=0)

    def test_cc_catches_label_disagreement(self):
        engine = mk()
        labels = algorithms.connected_components(engine).values
        assert certify_cc(engine, labels).ok
        bad = labels.copy()
        bad[GRAPH.indices[0]] = len(bad) - 1  # break one edge's labels
        with pytest.raises(IntegrityFailure, match="edge-agreement|canonical"):
            certify_cc(engine, bad)

    def test_sssp_catches_overtight_distance(self):
        engine = mkw()
        dist = algorithms.sssp(engine, root=0).values
        assert certify_sssp(engine, dist, root=0).ok
        bad = dist.copy()
        reached = np.flatnonzero(np.isfinite(bad) & (bad > 0))
        bad[reached[0]] *= 1.5  # now some in-edge has negative slack
        with pytest.raises(IntegrityFailure, match="slack"):
            certify_sssp(engine, bad, root=0)

    def test_sssp_requires_weights(self):
        engine = mk()
        with pytest.raises(ValueError, match="weighted"):
            certify_sssp(engine, np.zeros(GRAPH.n_vertices), root=0)

    def test_pagerank_catches_mass_loss(self):
        engine = mk()
        pr = algorithms.pagerank(engine, iterations=10).values
        assert certify_pagerank(engine, pr).ok
        with pytest.raises(IntegrityFailure, match="mass"):
            certify_pagerank(engine, pr * 1.01)

    def test_pagerank_catches_residual_blowup(self):
        engine = mk()
        pr = algorithms.pagerank(engine, iterations=10).values
        bad = pr.copy()
        # Move mass between two vertices: sum is preserved but the
        # vector is no longer near the power-iteration fixed point.
        bad[0] += 0.2
        bad[1] -= 0.2
        with pytest.raises(IntegrityFailure, match="residual|non-negative"):
            certify_pagerank(engine, bad)

    def test_certify_flag_on_algorithms(self):
        engine = mk()
        res = algorithms.pagerank(engine, iterations=5, certify=True)
        cert = res.extra["certification"]
        assert cert["ok"] is True and cert["algo"] == "pagerank"
        # The certifier charge is visible in the timing report.
        assert res.timings.certify > 0.0
        assert 0.0 < res.timings.certify_fraction < 1.0


class TestSdcCases:
    def test_unknown_algo_and_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            run_sdc_case(mk, "WAT", "memflip-single")
        with pytest.raises(ValueError, match="unknown SDC scenario"):
            run_sdc_case(mk, "BFS", "meteor-strike")

    def test_expected_scenarios_present(self):
        assert set(SDC_SCENARIOS) == {
            "memflip-single",
            "memflip-burst",
            "memflip-double",
        }

    @pytest.mark.parametrize("algo", ["BFS", "CC", "PR"])
    def test_single_flip_repairs_bit_identically(self, algo):
        case = run_sdc_case(mk, algo, "memflip-single")
        assert case.ok, case.error
        assert case.status == "repaired"
        assert case.detected
        assert case.values_equal and case.counters_equal and case.clocks_equal
        assert case.repairs == 1
        kinds = [e["kind"] for e in case.fault_events]
        assert "memflip" in kinds and "integrity" in kinds

    def test_sssp_repairs_on_weighted_graph(self):
        case = run_sdc_case(mkw, "SSSP", "memflip-single")
        assert case.ok, case.error

    def test_double_flip_needs_two_repairs(self):
        case = run_sdc_case(mk, "PR", "memflip-double")
        assert case.ok, case.error
        assert case.repairs == 2

    def test_exhausted_budget_reports_unrepaired(self):
        # Four flips against a budget of 1: the second detection must
        # turn fatal instead of looping forever.
        plan = FaultPlan(
            [
                FaultSpec("memflip", s, rank=1, bit=11 + s)
                for s in (2, 3, 4, 5)
            ]
        )
        case = run_sdc_case(
            mk, "PR", "custom", plan=plan, repair_budget=1
        )
        assert case.status == "unrepaired"
        assert case.detected  # loud failure, not silent corruption
        assert "budget exhausted" in case.error
        assert not case.ok


class TestSdcCampaign:
    @pytest.mark.parametrize("mode", sorted(MODES))
    def test_full_campaign_green_on_both_executors(self, mode):
        report = run_sdc_campaign(
            lambda: mk(mode), make_weighted_engine=lambda: mkw(mode)
        )
        assert report["schema"] == "repro.faults.sdc.v1"
        assert report["total"] == 12  # 3 scenarios x BFS/CC/PR/SSSP
        assert report["failed"] == 0
        assert report["undetected"] == 0
        assert report["unrepaired"] == 0
        assert report["skipped"] == []
        # single + burst: 1 repair each x 4 algos; double: 2 x 4.
        assert report["repairs"] == 16

    def test_weighted_algos_skip_loudly_without_weighted_factory(self):
        report = run_sdc_campaign(
            mk, algos=("BFS", "SSSP"), scenarios=("memflip-single",)
        )
        assert report["total"] == 1
        assert report["skipped"] == [
            {"scenario": "memflip-single", "algo": "SSSP"}
        ]


class TestSdcCLI:
    ARGS = [
        "faults",
        "--sdc",
        "--dataset",
        "FR",
        "--target-edges",
        "4096",
        "--algos",
        "BFS",
        "--scenario",
        "memflip-single",
    ]

    def test_sdc_campaign_exits_zero(self, capsys):
        rc = main(self.ARGS)
        out = capsys.readouterr().out
        assert rc == 0
        assert "memflip-single" in out
        assert "repaired" in out
        assert "0 failed" in out

    def test_sdc_report_written_to_disk(self, tmp_path, capsys):
        out_path = tmp_path / "sdc.json"
        rc = main(self.ARGS + ["--out", str(out_path)])
        assert rc == 0
        report = json.loads(out_path.read_text())
        assert report["schema"] == "repro.faults.sdc.v1"
        assert report["failed"] == 0
        assert report["cases"][0]["status"] == "repaired"
        capsys.readouterr()

    @pytest.mark.parametrize(
        "flags",
        [
            ["--sdc", "--elastic"],
            ["--sdc", "--autoscale"],
            ["--elastic", "--autoscale"],
        ],
    )
    def test_campaign_flags_mutually_exclusive(self, flags, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["faults"] + flags)
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "usage:" in err
        assert "not allowed with argument" in err

    def test_foreign_scenario_rejected_in_sdc_mode(self, capsys):
        rc = main(
            ["faults", "--sdc", "--scenario", "chronic-straggler-demote"]
        )
        assert rc == 2
        out = capsys.readouterr().out
        assert "not a --sdc scenario" in out
