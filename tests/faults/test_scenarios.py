"""Scenario campaign, fault-event traces, and the ``faults`` CLI."""

import json

import numpy as np
import pytest

from repro import Engine, algorithms
from repro.cli import main
from repro.core.trace import TraceRecorder
from repro.faults import FaultPlan, FaultSpec, run_campaign, run_case
from repro.graph import rmat


def mk():
    return Engine(rmat(7, seed=3), 4)


class TestRunCase:
    def test_unknown_algo_rejected(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            run_case(mk, "WAT", "crash-recover")

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_case(mk, "BFS", "meteor-strike")

    def test_transient_completes_with_equal_values(self):
        case = run_case(mk, "PR", "transient-retry")
        assert case.status == "completed"
        assert case.values_equal is True
        assert case.counters_equal is True
        assert case.recovery_s > 0  # backoff visible
        assert case.ok

    def test_crash_unrecovered_is_a_failing_grade(self):
        case = run_case(mk, "BFS", "crash-unrecovered")
        assert case.status == "unrecovered"
        assert not case.ok
        assert "crash failure" in case.error

    def test_custom_plan_overrides_scenario_table(self):
        plan = FaultPlan([FaultSpec("straggler", 1, rank=0, delay_s=1e-4)])
        case = run_case(mk, "CC", "custom", plan=plan)
        assert case.status == "completed" and case.ok
        assert case.fault_events[0]["kind"] == "straggler"


class TestRunCampaign:
    def test_default_campaign_report_shape(self):
        report = run_campaign(mk, algos=("BFS", "PR"))
        assert report["schema"] == "repro.faults.campaign.v1"
        assert report["total"] == 8  # 4 default scenarios x 2 algos
        assert report["failed"] == 0
        assert report["unrecovered"] == 0
        for case in report["cases"]:
            assert case["ok"] is True
            assert case["values_equal"] is True

    def test_campaign_counts_unrecovered(self):
        report = run_campaign(
            mk, algos=("BFS",), scenarios=("crash-unrecovered",)
        )
        assert report["failed"] == 1
        assert report["unrecovered"] == 1


class TestFaultEventsInTraces:
    def test_events_land_on_their_iteration_rows(self):
        engine = mk()
        engine.attach_faults(
            FaultPlan(
                [
                    FaultSpec("transient", 2, count=1),
                    FaultSpec("straggler", 3, rank=0, delay_s=1e-4),
                ]
            )
        )
        rec = TraceRecorder(engine)
        algorithms.pagerank(engine, iterations=5)
        rows = rec.collect()
        by_iter = {r.iteration: r for r in rows}
        assert [f["kind"] for f in by_iter[2].faults] == ["transient"]
        assert [f["kind"] for f in by_iter[3].faults] == ["straggler"]
        assert by_iter[1].faults == ()

    def test_events_survive_csv_and_json_export(self):
        engine = mk()
        engine.attach_faults(FaultPlan([FaultSpec("transient", 1, count=2)]))
        rec = TraceRecorder(engine)
        algorithms.pagerank(engine, iterations=3)
        rows = rec.collect()
        csv = rec.to_csv(rows)
        assert "faults" in csv.splitlines()[0]
        dicts = [r.as_dict() for r in rows]
        assert dicts[0]["faults"][0]["kind"] == "transient"
        assert dicts[0]["faults"][0]["retries"] == 1
        json.dumps(dicts)  # trace rows stay JSON-serializable

    def test_fault_free_rows_have_no_fault_column_noise(self):
        engine = mk()
        rec = TraceRecorder(engine)
        algorithms.pagerank(engine, iterations=3)
        assert all(r.faults == () for r in rec.collect())


class TestFaultsCLI:
    def test_default_campaign_exits_zero(self, capsys):
        rc = main(
            [
                "faults",
                "--dataset",
                "FR",
                "--target-edges",
                "4096",
                "--ranks",
                "4",
                "--algos",
                "BFS",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "crash-recover" in out and "recovered" in out

    def test_unrecovered_scenario_exits_nonzero(self, capsys):
        rc = main(
            [
                "faults",
                "--dataset",
                "FR",
                "--target-edges",
                "4096",
                "--ranks",
                "4",
                "--scenario",
                "crash-unrecovered",
                "--algos",
                "BFS",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "unrecovered" in out

    def test_report_written_to_disk(self, tmp_path, capsys):
        out_path = tmp_path / "report.json"
        rc = main(
            [
                "faults",
                "--dataset",
                "FR",
                "--target-edges",
                "4096",
                "--ranks",
                "4",
                "--scenario",
                "transient-retry",
                "--algos",
                "PR",
                "--out",
                str(out_path),
            ]
        )
        assert rc == 0
        report = json.loads(out_path.read_text())
        assert report["schema"] == "repro.faults.campaign.v1"
        assert report["cases"][0]["algo"] == "PR"
        capsys.readouterr()

    def test_bad_algo_rejected(self, capsys):
        rc = main(["faults", "--algos", "NOPE"])
        assert rc == 2
        capsys.readouterr()
