"""CheckpointManager: snapshot, prune, restore, disk round-trip."""

import hashlib
import os
import pickle

import numpy as np
import pytest

from repro import Engine, algorithms
from repro.faults import (
    CHECKPOINT_SCHEMA,
    CheckpointCorruption,
    CheckpointManager,
)
from repro.graph import rmat


def small_engine(n_ranks=4):
    return Engine(rmat(7, seed=3), n_ranks)


def _write_envelope(path, obj):
    """Write ``obj`` in the on-disk integrity-envelope format."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    envelope = {
        "schema": CHECKPOINT_SCHEMA,
        "sha256": hashlib.sha256(payload).hexdigest(),
        "payload": payload,
    }
    with open(path, "wb") as fh:
        pickle.dump(envelope, fh, protocol=pickle.HIGHEST_PROTOCOL)


class TestManagerConfig:
    def test_interval_validated(self):
        with pytest.raises(ValueError, match="interval"):
            CheckpointManager(interval=0)

    def test_keep_validated(self):
        with pytest.raises(ValueError, match="keep"):
            CheckpointManager(keep=0)

    def test_maybe_save_honors_interval(self):
        engine = small_engine()
        mgr = CheckpointManager(interval=3, checkpoint_bw=None)
        engine.attach_checkpoints(mgr)
        algorithms.pagerank(engine, iterations=7)
        # boundaries 3 and 6 fall on the interval
        assert mgr.saves == 2
        assert mgr.latest().superstep == 6

    def test_keep_prunes_oldest(self):
        engine = small_engine()
        mgr = CheckpointManager(interval=1, keep=2, checkpoint_bw=None)
        engine.attach_checkpoints(mgr)
        algorithms.pagerank(engine, iterations=5)
        assert mgr.saves == 5
        assert [c.superstep for c in mgr.checkpoints] == [4, 5]


class TestSnapshotContents:
    def test_checkpoint_captures_full_engine_state(self):
        engine = small_engine()
        mgr = CheckpointManager(interval=1, checkpoint_bw=None)
        engine.attach_checkpoints(mgr)
        algorithms.pagerank(engine, iterations=3)
        ckpt = mgr.latest()
        assert ckpt.schema == CHECKPOINT_SCHEMA
        assert ckpt.algo == "pagerank"
        assert len(ckpt.states) == engine.n_ranks
        assert all("pr" in per_rank for per_rank in ckpt.states)
        assert ckpt.nbytes > 0
        assert "iterations_run" in ckpt.algo_state

    def test_snapshot_is_a_copy(self):
        engine = small_engine()
        mgr = CheckpointManager(interval=1, keep=10, checkpoint_bw=None)
        engine.attach_checkpoints(mgr)
        algorithms.pagerank(engine, iterations=4)
        first, last = mgr.checkpoints[0], mgr.checkpoints[-1]
        # PageRank keeps iterating after the first boundary, so a live
        # view would have made these equal
        assert not np.array_equal(first.states[0]["pr"], last.states[0]["pr"])

    def test_checkpoint_cost_charged_to_recovery_lane(self):
        free = small_engine()
        algorithms.pagerank(free, iterations=3)
        engine = small_engine()
        engine.attach_checkpoints(CheckpointManager(interval=1))
        algorithms.pagerank(engine, iterations=3)
        assert engine.clocks.recovery_total > 0
        assert engine.clocks.elapsed > free.clocks.elapsed

    def test_checkpoint_bw_none_is_free(self):
        free = small_engine()
        algorithms.pagerank(free, iterations=3)
        engine = small_engine()
        engine.attach_checkpoints(CheckpointManager(interval=1, checkpoint_bw=None))
        algorithms.pagerank(engine, iterations=3)
        assert engine.clocks.elapsed == free.clocks.elapsed
        assert engine.clocks.recovery_total == 0.0


class TestRestore:
    def test_restore_rewinds_engine_exactly(self):
        engine = small_engine()
        mgr = CheckpointManager(interval=1, keep=10, checkpoint_bw=None)
        engine.attach_checkpoints(mgr)
        algorithms.pagerank(engine, iterations=5)
        mid = mgr.checkpoints[2]  # superstep 3
        final_pr = [a.copy() for a in engine.states("pr")]
        engine.restore(mid)
        assert not all(
            np.array_equal(a, b) for a, b in zip(engine.states("pr"), final_pr)
        )
        for rank, arr in enumerate(engine.states("pr")):
            assert np.array_equal(arr, mid.states[rank]["pr"])
        assert engine.counters.state_dict() == mid.counters
        assert len(engine.clocks.iteration_marks) == mid.superstep

    def test_resume_from_checkpoint_checks_algo_tag(self):
        engine = small_engine()
        engine.attach_checkpoints(CheckpointManager(checkpoint_bw=None))
        algorithms.pagerank(engine, iterations=3)
        with pytest.raises(ValueError, match="pagerank"):
            engine.resume_from_checkpoint("bfs")

    def test_resume_without_manager_returns_none(self):
        engine = small_engine()
        assert engine.resume_from_checkpoint("bfs") is None


class TestDiskRoundTrip:
    def test_pickle_round_trip(self, tmp_path):
        engine = small_engine()
        mgr = CheckpointManager(
            interval=1, directory=str(tmp_path), checkpoint_bw=None
        )
        engine.attach_checkpoints(mgr)
        algorithms.pagerank(engine, iterations=4)
        loaded = CheckpointManager.latest_on_disk(str(tmp_path))
        live = mgr.latest()
        assert loaded.superstep == live.superstep
        assert loaded.algo == live.algo
        assert loaded.counters == live.counters
        for a, b in zip(loaded.states, live.states):
            assert sorted(a) == sorted(b)
            for name in a:
                assert np.array_equal(a[name], b[name])
        assert loaded.algo_state == live.algo_state

    def test_disk_prune_tracks_keep(self, tmp_path):
        engine = small_engine()
        mgr = CheckpointManager(
            interval=1, directory=str(tmp_path), keep=2, checkpoint_bw=None
        )
        engine.attach_checkpoints(mgr)
        algorithms.pagerank(engine, iterations=5)
        files = sorted(os.listdir(tmp_path))
        assert files == ["ckpt_000004.pkl", "ckpt_000005.pkl"]

    def test_resume_in_fresh_process_equivalent(self, tmp_path):
        # Simulate a whole-process crash: run to completion once for
        # reference, then restore a *fresh* engine from disk and finish.
        g = rmat(7, seed=3)
        ref = algorithms.pagerank(
            Engine(g, 4), iterations=6
        )
        engine = Engine(g, 4)
        engine.attach_checkpoints(
            CheckpointManager(
                interval=1, directory=str(tmp_path), checkpoint_bw=None
            )
        )
        algorithms.pagerank(engine, iterations=3)  # "crashes" after 3

        fresh = Engine(g, 4)
        mgr = CheckpointManager(
            interval=1, directory=str(tmp_path), checkpoint_bw=None
        )
        mgr.checkpoints.append(CheckpointManager.latest_on_disk(str(tmp_path)))
        fresh.attach_checkpoints(mgr)
        res = algorithms.pagerank(fresh, iterations=6, resume=True)
        assert np.array_equal(res.values, ref.values)

    def test_load_rejects_wrong_schema(self, tmp_path):
        from repro.faults.checkpoint import Checkpoint

        bad = Checkpoint(
            superstep=1, algo="x", states=[], counters={}, clocks={},
            schema="repro.checkpoint.v999",
        )
        path = tmp_path / "ckpt_000001.pkl"
        _write_envelope(path, bad)
        with pytest.raises(ValueError, match="schema mismatch"):
            CheckpointManager.load(str(path))

    def test_load_rejects_non_checkpoint(self, tmp_path):
        path = tmp_path / "ckpt_000001.pkl"
        _write_envelope(path, {"not": "a checkpoint"})
        with pytest.raises(ValueError, match="does not contain"):
            CheckpointManager.load(str(path))

    def test_latest_on_disk_missing_directory(self, tmp_path):
        assert CheckpointManager.latest_on_disk(str(tmp_path / "nope")) is None


class TestCorruptionDetection:
    """Integrity-envelope checks: sha256 mismatch, truncation, legacy
    raw pickles, and the corrupt-skip fallback in latest_on_disk."""

    def _two_checkpoints(self, tmp_path):
        engine = small_engine()
        mgr = CheckpointManager(
            interval=1, directory=str(tmp_path), checkpoint_bw=None
        )
        engine.attach_checkpoints(mgr)
        algorithms.pagerank(engine, iterations=2)
        files = sorted(os.listdir(tmp_path))
        assert len(files) == 2
        return [os.path.join(tmp_path, f) for f in files]

    def test_bit_flip_raises_corruption_with_digests(self, tmp_path):
        (path, _) = self._two_checkpoints(tmp_path)[:2]
        with open(path, "rb") as fh:
            data = bytearray(fh.read())
        # Flip a byte deep inside the pickled payload bytes.
        data[len(data) // 2] ^= 0xFF
        with open(path, "wb") as fh:
            fh.write(bytes(data))
        with pytest.raises(CheckpointCorruption, match="sha256 mismatch") as ei:
            CheckpointManager.load(path)
        assert ei.value.path == path
        assert ei.value.expected is not None
        assert ei.value.actual is not None
        assert ei.value.expected != ei.value.actual

    def test_truncated_file_raises_corruption(self, tmp_path):
        (path, _) = self._two_checkpoints(tmp_path)[:2]
        with open(path, "rb") as fh:
            data = fh.read()
        with open(path, "wb") as fh:
            fh.write(data[: len(data) // 3])
        with pytest.raises(CheckpointCorruption):
            CheckpointManager.load(path)

    def test_legacy_raw_pickle_raises_corruption(self, tmp_path):
        # Pre-envelope files (a bare pickled Checkpoint) are unreadable
        # as envelopes, not silently accepted.
        from repro.faults.checkpoint import Checkpoint

        old = Checkpoint(
            superstep=1, algo="x", states=[], counters={}, clocks={}
        )
        path = str(tmp_path / "ckpt_000001.pkl")
        with open(path, "wb") as fh:
            pickle.dump(old, fh)
        with pytest.raises(CheckpointCorruption, match="envelope"):
            CheckpointManager.load(path)

    def test_latest_on_disk_skips_corrupt_newest(self, tmp_path):
        older, newer = self._two_checkpoints(tmp_path)
        with open(newer, "wb") as fh:
            fh.write(b"garbage")
        with pytest.warns(UserWarning, match="skipping corrupt checkpoint"):
            ckpt = CheckpointManager.latest_on_disk(str(tmp_path))
        assert ckpt is not None
        assert ckpt.superstep == 1

    def test_latest_on_disk_all_corrupt_returns_none(self, tmp_path):
        for path in self._two_checkpoints(tmp_path):
            with open(path, "wb") as fh:
                fh.write(b"garbage")
        with pytest.warns(UserWarning):
            assert CheckpointManager.latest_on_disk(str(tmp_path)) is None

    def test_corrupt_skip_emits_structured_event(self, tmp_path):
        """Skipping a corrupt checkpoint is not silent: a
        ``checkpoint-skip`` event names the path and both digests."""
        older, newer = self._two_checkpoints(tmp_path)
        with open(newer, "rb") as fh:
            data = bytearray(fh.read())
        data[len(data) // 2] ^= 0xFF  # deep bit flip → sha256 mismatch
        with open(newer, "wb") as fh:
            fh.write(bytes(data))
        events = []
        with pytest.warns(UserWarning, match="skipping corrupt checkpoint"):
            ckpt = CheckpointManager.latest_on_disk(str(tmp_path), events=events)
        assert ckpt is not None and ckpt.superstep == 1
        assert len(events) == 1
        ev = events[0]
        assert ev["kind"] == "checkpoint-skip"
        assert ev["collective"] == "checkpoint"
        assert ev["superstep"] == 2
        assert ev["path"] == newer
        assert ev["detected"] is True and ev["fatal"] is False
        assert ev["sha256_expected"] != ev["sha256_actual"]
        assert ev["sha256_expected"] is not None

    def test_skips_chain_of_bad_checkpoints_to_oldest_good(self, tmp_path):
        """A *chain* of damage — newest sha256-flipped, middle
        truncated — is walked newest-first, emitting one structured
        ``checkpoint-skip`` event per skip, and recovery lands on the
        oldest healthy snapshot."""
        engine = small_engine()
        mgr = CheckpointManager(
            interval=1, directory=str(tmp_path), keep=3, checkpoint_bw=None
        )
        engine.attach_checkpoints(mgr)
        algorithms.pagerank(engine, iterations=3)
        files = sorted(os.listdir(tmp_path))
        assert len(files) == 3
        oldest, middle, newest = (os.path.join(tmp_path, f) for f in files)
        # Newest: deep bit flip -> sha256 mismatch.
        with open(newest, "rb") as fh:
            data = bytearray(fh.read())
        data[len(data) // 2] ^= 0xFF
        with open(newest, "wb") as fh:
            fh.write(bytes(data))
        # Middle: truncated pickle -> unreadable envelope.
        with open(middle, "rb") as fh:
            data = fh.read()
        with open(middle, "wb") as fh:
            fh.write(data[: len(data) // 3])
        events = []
        with pytest.warns(UserWarning, match="skipping corrupt checkpoint"):
            ckpt = CheckpointManager.latest_on_disk(
                str(tmp_path), events=events
            )
        assert ckpt is not None
        assert ckpt.superstep == 1  # the oldest good snapshot
        # Exactly one structured event per skipped file, newest first.
        assert [e["kind"] for e in events] == [
            "checkpoint-skip", "checkpoint-skip",
        ]
        assert [e["superstep"] for e in events] == [3, 2]
        assert [e["path"] for e in events] == [newest, middle]
        sha_skip, trunc_skip = events
        assert sha_skip["sha256_expected"] != sha_skip["sha256_actual"]
        assert sha_skip["sha256_expected"] is not None
        # Truncation dies before the digest check: no sha pair, but the
        # detail says why.
        assert trunc_skip["sha256_expected"] is None
        assert "unreadable" in trunc_skip["detail"]
        for e in events:
            assert e["collective"] == "checkpoint"
            assert e["detected"] is True and e["fatal"] is False

    def test_corrupt_skip_records_event_on_engine(self, tmp_path):
        """With an engine passed, the skip lands in ``fault_events`` so
        traces show recovery passing over a bad checkpoint."""
        older, newer = self._two_checkpoints(tmp_path)
        with open(newer, "wb") as fh:
            fh.write(b"garbage")
        engine = small_engine()
        with pytest.warns(UserWarning):
            CheckpointManager.latest_on_disk(str(tmp_path), engine=engine)
        kinds = [e["kind"] for e in engine.fault_events]
        assert "checkpoint-skip" in kinds


class TestAtomicWrites:
    def _crashing_dump(self, monkeypatch, after_bytes=64):
        """Make the next pickle.dump write a partial prefix, then die —
        a process crash mid-stream, from the file's point of view."""
        import repro.faults.checkpoint as ckpt_mod

        real_dumps = pickle.dumps

        def dump_partial(obj, fh, protocol=None):
            data = real_dumps(obj, protocol or pickle.HIGHEST_PROTOCOL)
            fh.write(data[:after_bytes])
            fh.flush()
            raise OSError("simulated crash mid-write")

        monkeypatch.setattr(ckpt_mod.pickle, "dump", dump_partial)

    def test_crash_mid_write_preserves_previous_checkpoint(
        self, tmp_path, monkeypatch
    ):
        engine = small_engine()
        mgr = CheckpointManager(
            interval=1, directory=str(tmp_path), checkpoint_bw=None
        )
        engine.attach_checkpoints(mgr)
        algorithms.pagerank(engine, iterations=2)
        survivor = CheckpointManager.latest_on_disk(str(tmp_path))
        assert survivor.superstep == 2

        # The next superstep's save dies mid-stream ...
        self._crashing_dump(monkeypatch)
        with pytest.raises(OSError, match="simulated crash"):
            mgr.save(engine, 3, "pagerank", {"iterations_run": 3, "done": False})
        monkeypatch.undo()

        # ... and the on-disk series is undamaged: no torn ckpt_3 file,
        # no temp debris picked up, and the previous checkpoint loads
        # bit-identically.
        assert not (tmp_path / "ckpt_000003.pkl").exists()
        recovered = CheckpointManager.latest_on_disk(str(tmp_path))
        assert recovered.superstep == survivor.superstep
        assert recovered.counters == survivor.counters
        for a, b in zip(recovered.states, survivor.states):
            assert sorted(a) == sorted(b)
            for name in a:
                assert np.array_equal(a[name], b[name])

    def test_crash_rewriting_same_file_preserves_old_contents(
        self, tmp_path, monkeypatch
    ):
        """Overwriting an existing checkpoint path (same superstep, e.g.
        after adopt or a restarted run) must be all-or-nothing too."""
        engine = small_engine()
        mgr = CheckpointManager(
            interval=1, directory=str(tmp_path), checkpoint_bw=None
        )
        first = mgr.save(engine, 1, "x", {"gen": 1})
        path = tmp_path / "ckpt_000001.pkl"
        before = path.read_bytes()

        self._crashing_dump(monkeypatch)
        with pytest.raises(OSError, match="simulated crash"):
            mgr.save(engine, 1, "x", {"gen": 2})
        monkeypatch.undo()

        assert path.read_bytes() == before
        assert CheckpointManager.load(str(path)).algo_state == first.algo_state

    def test_no_temp_debris_after_healthy_writes(self, tmp_path):
        engine = small_engine()
        mgr = CheckpointManager(
            interval=1, directory=str(tmp_path), checkpoint_bw=None
        )
        engine.attach_checkpoints(mgr)
        algorithms.pagerank(engine, iterations=3)
        assert all(not n.endswith(".tmp") for n in os.listdir(tmp_path))

    def test_restore_after_crash_is_bit_identical(self, tmp_path, monkeypatch):
        g = rmat(7, seed=3)
        ref = algorithms.pagerank(Engine(g, 4), iterations=4)

        engine = Engine(g, 4)
        mgr = CheckpointManager(
            interval=1, directory=str(tmp_path), checkpoint_bw=None
        )
        engine.attach_checkpoints(mgr)
        algorithms.pagerank(engine, iterations=2)
        # superstep 3's write dies mid-stream; superstep 2 must carry
        # the resumed run to the reference result.
        self._crashing_dump(monkeypatch)
        with pytest.raises(OSError):
            mgr.save(engine, 3, "pagerank", {"iterations_run": 3, "done": False})
        monkeypatch.undo()

        fresh = Engine(g, 4)
        mgr2 = CheckpointManager(
            interval=1, directory=str(tmp_path), checkpoint_bw=None
        )
        mgr2.checkpoints.append(CheckpointManager.latest_on_disk(str(tmp_path)))
        fresh.attach_checkpoints(mgr2)
        res = algorithms.pagerank(fresh, iterations=4, resume=True)
        assert np.array_equal(res.values, ref.values)
        assert res.timings.total == ref.timings.total


class TestAsyncWrites:
    def test_async_files_identical_to_sync(self, tmp_path):
        g = rmat(7, seed=3)
        sync_dir, async_dir = tmp_path / "sync", tmp_path / "async"

        e1 = Engine(g, 4)
        e1.attach_checkpoints(
            CheckpointManager(interval=1, directory=str(sync_dir), checkpoint_bw=None)
        )
        algorithms.pagerank(e1, iterations=4)

        e2 = Engine(g, 4)
        mgr = CheckpointManager(
            interval=1,
            directory=str(async_dir),
            checkpoint_bw=None,
            async_write=True,
        )
        e2.attach_checkpoints(mgr)
        algorithms.pagerank(e2, iterations=4)
        mgr.flush()

        assert sorted(os.listdir(sync_dir)) == sorted(os.listdir(async_dir))
        for name in sorted(os.listdir(sync_dir)):
            a = CheckpointManager.load(str(sync_dir / name))
            b = CheckpointManager.load(str(async_dir / name))
            assert a.superstep == b.superstep
            assert a.counters == b.counters
            for sa, sb in zip(a.states, b.states):
                for key in sa:
                    assert np.array_equal(sa[key], sb[key])

    def test_async_charges_same_virtual_time_as_sync(self):
        g = rmat(7, seed=3)
        e1, e2 = Engine(g, 4), Engine(g, 4)
        e1.attach_checkpoints(CheckpointManager(interval=1))
        m2 = CheckpointManager(interval=1, directory=None)
        e2.attach_checkpoints(m2)
        r1 = algorithms.pagerank(e1, iterations=3)
        r2 = algorithms.pagerank(e2, iterations=3)
        # the copy-out charge is identical whether or not a disk drain
        # follows (the drain is off the modeled critical path)
        assert r1.timings.total == r2.timings.total
        assert r1.timings.recovery == r2.timings.recovery

    def test_prune_never_overtakes_write(self, tmp_path):
        engine = small_engine()
        mgr = CheckpointManager(
            interval=1,
            directory=str(tmp_path),
            keep=1,
            checkpoint_bw=None,
            async_write=True,
        )
        engine.attach_checkpoints(mgr)
        algorithms.pagerank(engine, iterations=5)
        mgr.flush()
        assert sorted(os.listdir(tmp_path)) == ["ckpt_000005.pkl"]
        assert CheckpointManager.latest_on_disk(str(tmp_path)).superstep == 5

    def test_latest_on_disk_healthy_while_writer_busy(self, tmp_path):
        """Whatever latest_on_disk observes mid-run must be a complete,
        healthy checkpoint (atomic publication), even with the writer
        still draining."""
        engine = small_engine()
        mgr = CheckpointManager(
            interval=1,
            directory=str(tmp_path),
            checkpoint_bw=None,
            async_write=True,
        )
        engine.attach_checkpoints(mgr)
        algorithms.pagerank(engine, iterations=4)
        seen = CheckpointManager.latest_on_disk(str(tmp_path))
        assert seen is None or isinstance(seen.superstep, int)
        mgr.flush()
        assert CheckpointManager.latest_on_disk(str(tmp_path)).superstep == 4

    def test_background_error_surfaces_on_flush(self, tmp_path, monkeypatch):
        mgr = CheckpointManager(
            interval=1,
            directory=str(tmp_path),
            checkpoint_bw=None,
            async_write=True,
        )
        monkeypatch.setattr(
            mgr,
            "_write_sync",
            lambda ckpt, path: (_ for _ in ()).throw(OSError("disk full")),
        )
        engine = small_engine()
        mgr.save(engine, 1, "x", {})
        with pytest.raises(RuntimeError, match="async checkpoint write failed"):
            mgr.flush()

    def test_close_is_idempotent(self, tmp_path):
        mgr = CheckpointManager(
            interval=1,
            directory=str(tmp_path),
            checkpoint_bw=None,
            async_write=True,
        )
        engine = small_engine()
        mgr.save(engine, 1, "x", {})
        mgr.close()
        mgr.close()
        assert CheckpointManager.latest_on_disk(str(tmp_path)).superstep == 1
