"""Robustness tests: fault injection, resilient collectives, checkpoint/recovery."""
