"""Failure injection: the system fails loudly and precisely.

A production library's error paths matter as much as its happy paths:
memory exhaustion must name the rank and the allocation, corrupted
exchanges must be caught by the validators, and bad configurations
must be rejected before any compute runs.
"""

import numpy as np
import pytest

from repro import Engine, algorithms
from repro.cluster import DeviceMemoryError
from repro.comm.grid import Grid2D
from repro.graph import Graph, rmat
from repro.reference import serial


class TestMemoryExhaustion:
    def test_oom_during_construction_names_rank(self):
        g = rmat(9, seed=1)
        with pytest.raises(DeviceMemoryError) as exc:
            Engine(g, 4, memory_scale=1e9, enforce_memory=True)
        assert "rank" in str(exc.value)
        assert "exceeds capacity" in str(exc.value)

    def test_oom_during_algorithm_state_alloc(self):
        # Construction fits, but the algorithm's state arrays push a
        # rank over the edge mid-run.
        g = rmat(9, seed=1)
        engine = Engine(g, 4, enforce_memory=True)
        # shrink remaining capacity artificially
        for ctx in engine.contexts:
            ctx.device.charge("ballast", ctx.device.free_bytes - 4 * ctx.n_total)
        with pytest.raises(DeviceMemoryError):
            algorithms.pagerank(engine, iterations=1)

    def test_unenforced_records_but_completes(self):
        g = rmat(8, seed=1)
        engine = Engine(g, 4, memory_scale=1e9, enforce_memory=False)
        res = algorithms.connected_components(engine)
        assert np.array_equal(
            serial.canonical_labels(res.values),
            serial.canonical_labels(serial.connected_components(g)),
        )
        assert all(ctx.device.oversubscribed for ctx in engine.contexts)


class TestCorruptionDetection:
    def test_validator_catches_partition_corruption(self, rmat_graph=None):
        g = rmat(7, seed=2)
        engine = Engine(g, 4)
        blk = engine.partition.blocks[1]
        blk.indices[0] = 10**6  # out-of-range adjacency
        with pytest.raises(AssertionError, match="out of range"):
            engine.partition.validate()

    def test_validator_catches_lost_edges(self):
        g = rmat(7, seed=2)
        engine = Engine(g, 4)
        blk = engine.partition.blocks[0]
        blk.indices = blk.indices[:-3]
        blk.indptr = np.clip(blk.indptr, 0, blk.indices.size)
        with pytest.raises(AssertionError, match="edges"):
            engine.partition.validate()

    def test_bfs_parent_validator_rejects_fakes(self):
        g = rmat(7, seed=3)
        res = algorithms.bfs(Engine(g, 4), root=0)
        parents = res.values.copy()
        reachable = np.flatnonzero(parents >= 0)
        victim = reachable[reachable != 0][0]
        parents[victim] = victim  # self-parent loop (not the root)
        assert not serial.bfs_parents_valid(g, 0, parents)

    def test_matching_validator_rejects_asymmetry(self):
        g = rmat(7, seed=3).with_random_weights(seed=1)
        res = algorithms.max_weight_matching(Engine(g, 4))
        mate = res.values.copy()
        matched = np.flatnonzero(mate >= 0)
        if matched.size:
            mate[matched[0]] = -1  # break symmetry
            assert not serial.matching_is_valid(g, mate)


class TestBadConfigurations:
    def test_empty_graph_zero_vertices_rejected(self):
        with pytest.raises(Exception):
            Graph(indptr=np.array([], dtype=np.int64), indices=np.array([]))

    def test_more_row_groups_than_vertices(self):
        # degenerate: 3 vertices over 8 block-rows still works (empty
        # row ranges), because group_ranges allows empty groups.
        g = Graph.from_edges([0, 1], [1, 2], 3)
        engine = Engine(g, grid=Grid2D(R=2, C=8))
        res = algorithms.connected_components(engine)
        assert np.unique(res.values).size == 1

    def test_wrong_state_vector_length(self):
        g = rmat(6, seed=1)
        engine = Engine(g, 4)
        with pytest.raises(ValueError, match="wrong length"):
            engine.partition.scatter_global(np.zeros(5), 0)

    def test_algorithms_reject_graphless_requirements(self):
        g = rmat(6, seed=1)  # unweighted
        engine = Engine(g, 4)
        with pytest.raises(ValueError):
            algorithms.sssp(engine, root=0)
        with pytest.raises(ValueError):
            algorithms.max_weight_matching(engine)
