"""Tests for the scratch-buffer pool used by the sparse exchanges."""

import numpy as np
import pytest

from repro.kernels import BufferPool
from repro.kernels.buffers import _MAX_POOLED

PAIR = np.dtype([("gid", np.int64), ("val", np.float64)])


class TestTake:
    def test_exact_length_and_dtype(self):
        pool = BufferPool(PAIR)
        buf = pool.take(7)
        assert buf.shape == (7,) and buf.dtype == PAIR
        assert buf.flags.writeable

    def test_zero_length(self):
        pool = BufferPool(np.float64)
        assert pool.take(0).shape == (0,)

    def test_miss_then_hit(self):
        pool = BufferPool(np.float64)
        buf = pool.take(10)
        assert (pool.hits, pool.misses) == (0, 1)
        pool.give(buf)
        again = pool.take(5)
        assert (pool.hits, pool.misses) == (1, 1)
        assert again.shape == (5,)

    def test_capacity_grows_geometrically(self):
        pool = BufferPool(np.int64)
        buf = pool.take(100)
        base = buf.base
        assert base is not None and base.shape[0] >= 128
        pool.give(buf)
        # the grown backing array satisfies any request up to its capacity
        big = pool.take(base.shape[0])
        assert big.base is base or big is base

    def test_too_small_pooled_buffer_is_a_miss(self):
        pool = BufferPool(np.float64)
        pool.give(pool.take(4))
        buf = pool.take(1000)
        assert pool.misses == 2
        assert buf.shape == (1000,)

    def test_prefers_smallest_sufficient_base(self):
        pool = BufferPool(np.float64)
        small, large = pool.take(16), pool.take(4096)
        small_base, large_base = small.base, large.base
        pool.give(small, large)
        got = pool.take(8)
        assert got.base is small_base
        assert large_base in pool._free


class TestGive:
    def test_foreign_dtype_rejected(self):
        pool = BufferPool(PAIR)
        pool.give(np.zeros(8, dtype=np.float64))
        assert pool._free == []

    def test_cap_respected(self):
        pool = BufferPool(np.float64)
        for _ in range(_MAX_POOLED + 10):
            pool.give(np.empty(4, dtype=np.float64))
        assert len(pool._free) == _MAX_POOLED

    def test_clear(self):
        pool = BufferPool(np.float64)
        pool.give(pool.take(8))
        pool.clear()
        assert pool._free == []
        assert pool.take(8).shape == (8,)


def test_pool_roundtrip_contents_independent():
    # A recycled buffer is fully overwritable scratch: writes through a
    # taken view land in the backing array, and a later take of the same
    # backing array does not alias a *live* buffer (we gave it back first).
    pool = BufferPool(np.int64)
    a = pool.take(6)
    a[:] = np.arange(6)
    pool.give(a)
    b = pool.take(6)
    b[:] = 7
    assert (b == 7).all()
