"""Tests for the scratch-buffer pool used by the sparse exchanges."""

import numpy as np
import pytest

from repro.kernels import BufferPool
from repro.kernels.buffers import _MAX_POOLED

PAIR = np.dtype([("gid", np.int64), ("val", np.float64)])


class TestTake:
    def test_exact_length_and_dtype(self):
        pool = BufferPool(PAIR)
        buf = pool.take(7)
        assert buf.shape == (7,) and buf.dtype == PAIR
        assert buf.flags.writeable

    def test_zero_length(self):
        pool = BufferPool(np.float64)
        assert pool.take(0).shape == (0,)

    def test_miss_then_hit(self):
        pool = BufferPool(np.float64)
        buf = pool.take(10)
        assert (pool.hits, pool.misses) == (0, 1)
        pool.give(buf)
        again = pool.take(5)
        assert (pool.hits, pool.misses) == (1, 1)
        assert again.shape == (5,)

    def test_capacity_grows_geometrically(self):
        pool = BufferPool(np.int64)
        buf = pool.take(100)
        base = buf.base
        assert base is not None and base.shape[0] >= 128
        pool.give(buf)
        # the grown backing array satisfies any request up to its capacity
        big = pool.take(base.shape[0])
        assert big.base is base or big is base

    def test_too_small_pooled_buffer_is_a_miss(self):
        pool = BufferPool(np.float64)
        pool.give(pool.take(4))
        buf = pool.take(1000)
        assert pool.misses == 2
        assert buf.shape == (1000,)

    def test_prefers_smallest_sufficient_base(self):
        pool = BufferPool(np.float64)
        small, large = pool.take(16), pool.take(4096)
        small_base, large_base = small.base, large.base
        pool.give(small, large)
        got = pool.take(8)
        assert got.base is small_base
        assert large_base in pool._free


class TestGive:
    def test_foreign_dtype_rejected(self):
        pool = BufferPool(PAIR)
        pool.give(np.zeros(8, dtype=np.float64))
        assert pool._free == []

    def test_cap_respected(self):
        pool = BufferPool(np.float64)
        for _ in range(_MAX_POOLED + 10):
            pool.give(np.empty(4, dtype=np.float64))
        assert len(pool._free) == _MAX_POOLED

    def test_clear(self):
        pool = BufferPool(np.float64)
        pool.give(pool.take(8))
        pool.clear()
        assert pool._free == []
        assert pool.take(8).shape == (8,)


def test_pool_roundtrip_contents_independent():
    # A recycled buffer is fully overwritable scratch: writes through a
    # taken view land in the backing array, and a later take of the same
    # backing array does not alias a *live* buffer (we gave it back first).
    pool = BufferPool(np.int64)
    a = pool.take(6)
    a[:] = np.arange(6)
    pool.give(a)
    b = pool.take(6)
    b[:] = 7
    assert (b == 7).all()


class TestDoubleGive:
    def test_double_give_is_ignored(self):
        # Giving the same backing array twice must pool it once: two
        # pooled copies would hand the same memory to two callers.
        pool = BufferPool(np.int64)
        a = pool.take(6)
        pool.give(a)
        pool.give(a)
        assert len(pool._free) == 1
        b = pool.take(6)
        c = pool.take(6)
        assert b.base is not c.base or (b.base is None and c.base is None)
        b[:] = 1
        c[:] = 2
        assert (b == 1).all() and (c == 2).all()

    def test_give_via_view_and_base(self):
        pool = BufferPool(np.float64)
        a = pool.take(8)
        pool.give(a)
        pool.give(a[:4])  # view over the same base: still one entry
        assert len(pool._free) == 1

    def test_clear_resets_identity_guard(self):
        pool = BufferPool(np.float64)
        a = pool.take(8)
        pool.give(a)
        pool.clear()
        pool.give(a)  # legitimate again after clear
        assert len(pool._free) == 1


def test_context_scratch_pools_are_per_rank(rmat_graph=None):
    from repro.core.engine import Engine
    from repro.graph import rmat

    e = Engine(rmat(7, seed=2), 4)
    pools = [ctx.scratch_pool(np.float64) for ctx in e.contexts]
    assert len({id(p) for p in pools}) == 4  # one pool per rank
    # Same (rank, dtype) always resolves to the same pool.
    assert e.contexts[0].scratch_pool(np.float64) is pools[0]
    assert e.contexts[0].scratch_pool(np.int64) is not pools[0]


class TestTake2D:
    """2-D lane-slice buffers recycled through the 1-D pool."""

    def test_shape_dtype_contiguity(self):
        pool = BufferPool(np.float64)
        buf = pool.take2d(5, 3)
        assert buf.shape == (5, 3) and buf.dtype == np.float64
        assert buf.flags.c_contiguous and buf.flags.writeable

    def test_zero_rows(self):
        pool = BufferPool(np.float64)
        assert pool.take2d(0, 4).shape == (0, 4)

    def test_recycled_through_1d_pool(self):
        pool = BufferPool(np.float64)
        buf = pool.take2d(4, 2)
        pool.give(buf)
        again = pool.take2d(2, 4)  # same element count, new shape
        assert again.shape == (2, 4)
        assert pool.hits == 1

    def test_double_give_2d_ignored(self):
        pool = BufferPool(np.int64)
        buf = pool.take2d(3, 2)
        pool.give(buf)
        pool.give(buf)
        assert len(pool._free) == 1

    def test_give_2d_and_1d_views_of_same_base_once(self):
        # The identity guard must see through reshape view chains: a
        # 2-D view and the 1-D view it came from share one backing.
        pool = BufferPool(np.float64)
        a = pool.take(12)
        b = a.reshape(3, 4)
        pool.give(b)
        pool.give(a)
        assert len(pool._free) == 1


def test_root_base_walks_view_chains():
    from repro.kernels.buffers import _root_base

    backing = np.zeros(12)
    assert _root_base(backing) is backing
    assert _root_base(backing[:8]) is backing
    assert _root_base(backing[:8].reshape(2, 4)) is backing
    assert _root_base(backing[:8].reshape(2, 4)[1:]) is backing
