"""Property tests for the fused scatter-reduce kernel.

The kernel's contract is exact agreement with the pre-kernel
``np.unique`` + ``old.copy()`` + ``np.<op>.at`` + compare idiom
(:func:`repro.kernels.scatter_reduce_reference`): bit-identical state
after the update and the identical changed-LID set, across ops, dtypes,
regimes (sparse queues vs edge-sized dense index arrays), duplicates,
and non-contiguous views.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import ScatterError, scatter_reduce, scatter_reduce_reference
from repro.kernels.scatter import segment_reduce

OPS = ["min", "max", "sum"]

PAIR = np.dtype([("gid", np.int64), ("val", np.float64)])


def _check_against_reference(state, lids, vals, op):
    ref_state = state.copy()
    ref_changed = scatter_reduce_reference(ref_state, lids, vals, op)
    changed = scatter_reduce(state, lids, vals, op)
    np.testing.assert_array_equal(state, ref_state, strict=True)
    np.testing.assert_array_equal(changed, ref_changed, strict=True)


@st.composite
def scatter_case(draw):
    n = draw(st.integers(min_value=1, max_value=50))
    # duplicate-heavy by construction: k can far exceed n
    k = draw(st.integers(min_value=0, max_value=200))
    lids = draw(
        st.lists(st.integers(min_value=0, max_value=n - 1), min_size=k, max_size=k)
    )
    finite = st.floats(
        min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
    )
    state = draw(st.lists(finite, min_size=n, max_size=n))
    vals = draw(st.lists(finite, min_size=k, max_size=k))
    return (
        np.array(state, dtype=np.float64),
        np.array(lids, dtype=np.int64),
        np.array(vals, dtype=np.float64),
    )


class TestAgainstReference:
    @pytest.mark.parametrize("op", OPS)
    @settings(max_examples=80, deadline=None)
    @given(case=scatter_case())
    def test_float64(self, case, op):
        state, lids, vals = case
        _check_against_reference(state, lids, vals, op)

    @pytest.mark.parametrize("op", OPS)
    @settings(max_examples=60, deadline=None)
    @given(case=scatter_case())
    def test_int64(self, case, op):
        state, lids, vals = case
        state = state.astype(np.int64)
        vals = vals.astype(np.int64)
        _check_against_reference(state, lids, vals, op)

    @pytest.mark.parametrize("op", OPS)
    def test_dense_regime_edge_sized_lids(self, op):
        # lids much larger than state forces the full-diff strategy
        rng = np.random.default_rng(0)
        state = rng.normal(size=37)
        lids = rng.integers(0, 37, size=5000)
        vals = rng.normal(size=5000)
        _check_against_reference(state, lids, vals, op)

    @pytest.mark.parametrize("op", OPS)
    def test_sparse_regime_tiny_queue(self, op):
        rng = np.random.default_rng(1)
        state = rng.normal(size=100_000)
        lids = rng.integers(0, 100_000, size=8)
        vals = rng.normal(size=8)
        _check_against_reference(state, lids, vals, op)

    @pytest.mark.parametrize("op", ["min", "max"])
    def test_nan_vals_propagate_like_reference(self, op):
        state = np.array([1.0, 2.0, 3.0])
        lids = np.array([0, 0, 2], dtype=np.int64)
        vals = np.array([np.nan, 0.5, 9.0])
        with np.errstate(invalid="ignore"):
            _check_against_reference(state, lids, vals, op)


class TestEdges:
    @pytest.mark.parametrize("op", OPS)
    def test_empty_lids(self, op):
        state = np.arange(4, dtype=np.float64)
        changed = scatter_reduce(state, np.empty(0, dtype=np.int64), np.empty(0), op)
        assert changed.size == 0 and changed.dtype == np.int64
        np.testing.assert_array_equal(state, np.arange(4, dtype=np.float64))

    def test_scalar_vals_broadcast(self):
        state = np.zeros(5)
        changed = scatter_reduce(state, np.array([1, 3, 3], dtype=np.int64), 1.0, "max")
        np.testing.assert_array_equal(changed, [1, 3])
        np.testing.assert_array_equal(state, [0, 1, 0, 1, 0])

    def test_non_contiguous_views(self):
        rng = np.random.default_rng(2)
        backing = rng.normal(size=400)
        lids_backing = rng.integers(0, 200, size=300)
        vals_backing = rng.normal(size=300)
        state, lids, vals = backing[::2], lids_backing[::3], vals_backing[::3]
        ref_state = state.copy()
        ref = scatter_reduce_reference(ref_state, lids, vals, "min")
        changed = scatter_reduce(state, lids, vals, "min")
        np.testing.assert_array_equal(state, ref_state)
        np.testing.assert_array_equal(changed, ref)

    def test_sum_zero_delta_not_reported_changed(self):
        state = np.array([5.0, 6.0])
        changed = scatter_reduce(state, np.array([0, 1], dtype=np.int64),
                                 np.array([0.0, 1.0]), "sum")
        np.testing.assert_array_equal(changed, [1])

    def test_sum_cancelling_deltas_not_reported_changed(self):
        state = np.array([5.0])
        changed = scatter_reduce(state, np.array([0, 0], dtype=np.int64),
                                 np.array([2.5, -2.5]), "sum")
        assert changed.size == 0
        assert state[0] == 5.0

    def test_bad_op_raises(self):
        with pytest.raises(ScatterError):
            scatter_reduce(np.zeros(2), np.array([0], dtype=np.int64), 1.0, "prod")

    def test_float_lids_raise(self):
        with pytest.raises(ScatterError):
            scatter_reduce(np.zeros(2), np.array([0.0]), 1.0, "min")


class TestStructured:
    @settings(max_examples=50, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=20),
        raw=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=19),
                st.floats(min_value=-100, max_value=100,
                          allow_nan=False, allow_infinity=False),
                st.integers(min_value=-50, max_value=50),
            ),
            max_size=120,
        ),
        op=st.sampled_from(["min", "max"]),
    )
    def test_pair_dtype_lexicographic(self, n, raw, op):
        raw = [(l % n, v, g) for l, v, g in raw]
        lids = np.array([r[0] for r in raw], dtype=np.int64)
        vals = np.empty(len(raw), dtype=PAIR)
        vals["val"] = [r[1] for r in raw]
        vals["gid"] = [r[2] for r in raw]
        rng = np.random.default_rng(n)
        state = np.empty(n, dtype=PAIR)
        state["val"] = rng.normal(size=n)
        state["gid"] = rng.integers(-50, 50, size=n)
        # serial oracle: lexicographic (field-order) min/max per lid
        before = state.copy()
        expect = state.copy()
        pick = min if op == "min" else max
        for lid, v, g in zip(lids, vals["val"], vals["gid"]):
            expect[lid] = pick(tuple(expect[lid]), (g, v))
        changed = scatter_reduce(state, lids, vals, op)
        np.testing.assert_array_equal(state, expect)
        np.testing.assert_array_equal(changed, np.flatnonzero(expect != before))

    def test_structured_sum_rejected(self):
        state = np.zeros(2, dtype=PAIR)
        vals = np.zeros(1, dtype=PAIR)
        with pytest.raises(ScatterError):
            scatter_reduce(state, np.array([0], dtype=np.int64), vals, "sum")


class TestSegmentReduce:
    @pytest.mark.parametrize("op,expect", [
        ("min", [1, 0, 7]),
        ("max", [5, 4, 7]),
        ("sum", [9, 4, 7]),
    ])
    def test_ops(self, op, expect):
        values = np.array([5, 3, 1, 0, 4, 7], dtype=np.int64)
        starts = np.array([0, 3, 5], dtype=np.int64)
        np.testing.assert_array_equal(segment_reduce(values, starts, op), expect)

    def test_bad_op(self):
        with pytest.raises(ScatterError):
            segment_reduce(np.arange(3), np.array([0]), "mean")


# ---------------------------------------------------------------------
# Lane-aware 2-D scatter (batched multi-source traversal)
# ---------------------------------------------------------------------

from repro.kernels import scatter_reduce_lanes  # noqa: E402


@st.composite
def lane_scatter_case(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    k = draw(st.integers(min_value=1, max_value=5))
    m = draw(st.integers(min_value=0, max_value=120))
    lids = draw(
        st.lists(st.integers(min_value=0, max_value=n - 1), min_size=m, max_size=m)
    )
    lanes = draw(
        st.lists(st.integers(min_value=0, max_value=k - 1), min_size=m, max_size=m)
    )
    finite = st.floats(
        min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
    )
    state = draw(st.lists(finite, min_size=n * k, max_size=n * k))
    vals = draw(st.lists(finite, min_size=m, max_size=m))
    return (
        np.array(state, dtype=np.float64).reshape(n, k),
        np.array(lids, dtype=np.int64),
        np.array(lanes, dtype=np.int64),
        np.array(vals, dtype=np.float64),
    )


class TestScatterReduceLanes:
    """Per-lane bit-identity to k independent 1-D scatter_reduce calls."""

    @pytest.mark.parametrize("op", OPS)
    @settings(max_examples=60, deadline=None)
    @given(case=lane_scatter_case())
    def test_lane_mode_matches_per_lane_1d(self, case, op):
        state, lids, lanes, vals = case
        k = state.shape[1]
        fused = state.copy()
        ch_lids, ch_lanes = scatter_reduce_lanes(
            fused, lids, vals, op, lanes=lanes
        )
        for lane in range(k):
            col = state[:, lane].copy()
            sel = lanes == lane
            changed = scatter_reduce(col, lids[sel], vals[sel], op)
            np.testing.assert_array_equal(fused[:, lane], col, strict=True)
            np.testing.assert_array_equal(ch_lids[ch_lanes == lane], changed)

    @pytest.mark.parametrize("op", OPS)
    @settings(max_examples=60, deadline=None)
    @given(case=lane_scatter_case())
    def test_row_vector_mode_matches_per_lane_1d(self, case, op):
        state, lids, _, vals1 = case
        k = state.shape[1]
        rng = np.random.default_rng(lids.size)
        vals = np.outer(
            vals1 if vals1.size else np.empty(0), np.ones(k)
        ) + rng.integers(0, 3, size=(lids.size, k))
        fused = state.copy()
        ch_lids, ch_lanes = scatter_reduce_lanes(fused, lids, vals, op)
        for lane in range(k):
            col = state[:, lane].copy()
            changed = scatter_reduce(col, lids, vals[:, lane].copy(), op)
            np.testing.assert_array_equal(fused[:, lane], col, strict=True)
            np.testing.assert_array_equal(ch_lids[ch_lanes == lane], changed)

    def test_changed_pairs_sorted_by_lid_then_lane(self):
        state = np.full((6, 3), 10.0)
        lids = np.array([5, 0, 5, 2], dtype=np.int64)
        lanes = np.array([2, 1, 0, 1], dtype=np.int64)
        ch_lids, ch_lanes = scatter_reduce_lanes(
            state, lids, np.zeros(4), "min", lanes=lanes
        )
        comp = ch_lids * 3 + ch_lanes
        assert np.array_equal(comp, np.sort(comp))
        assert ch_lids.tolist() == [0, 2, 5, 5]
        assert ch_lanes.tolist() == [1, 1, 0, 2]

    def test_empty_lids(self):
        state = np.zeros((4, 2))
        ch_lids, ch_lanes = scatter_reduce_lanes(
            state, np.empty(0, dtype=np.int64), np.empty(0), "min",
            lanes=np.empty(0, dtype=np.int64),
        )
        assert ch_lids.size == 0 and ch_lanes.size == 0

    def test_1d_state_rejected(self):
        with pytest.raises(ScatterError, match="2-D"):
            scatter_reduce_lanes(
                np.zeros(4), np.array([0]), np.array([1.0]),
                lanes=np.array([0]),
            )

    def test_non_contiguous_state_rejected(self):
        state = np.zeros((4, 3), order="F")
        with pytest.raises(ScatterError, match="contiguous"):
            scatter_reduce_lanes(
                state, np.array([0]), np.array([1.0]), lanes=np.array([0])
            )

    def test_lane_shape_mismatch_rejected(self):
        state = np.zeros((4, 2))
        with pytest.raises(ScatterError, match="lanes shape"):
            scatter_reduce_lanes(
                state, np.array([0, 1]), np.array([1.0, 2.0]),
                lanes=np.array([0]),
            )

    def test_row_vector_shape_mismatch_rejected(self):
        state = np.zeros((4, 2))
        with pytest.raises(ScatterError, match="row-vector"):
            scatter_reduce_lanes(state, np.array([0, 1]), np.zeros((2, 3)))
