"""Paper §5 / §5.7 memory outcomes (Table 4 inputs vs frameworks).

The paper's implicit feasibility table, reproduced analytically from
the distribution footprint models:

* HPCGraph-GPU (compact 2D) holds every Table 4 input, including the
  128 B edge WDC12 on 400x32 GB V100s;
* Gluon-GPU loads TW, FR and RMAT28 but hits allocation failures on
  GSH and ClueWeb (its general-purpose substrate keeps O(N)
  state/metadata per host);
* CuGraph fits RMAT26 on the 4xA100 zepy but not RMAT28 (ETL peak of
  several edge-list copies).
"""

from __future__ import annotations

from repro.bench import (
    estimate_2d_memory,
    estimate_generic_substrate_memory,
    estimate_la_backend_memory,
)
from repro.cluster import AIMOS, ZEPY
from repro.graph.datasets import REGISTRY, DatasetMeta


def _rmat_meta(scale: int) -> DatasetMeta:
    return DatasetMeta(
        name=f"rmat{scale}",
        abbr=f"RMAT{scale}",
        n_vertices=1 << scale,
        n_edges=16 << scale,
        kind="rmat",
    )


def _run() -> dict[str, bool]:
    out = {}
    # ours: every real input at the paper's largest rank counts
    for abbr, p in [("TW", 256), ("FR", 256), ("CW", 256), ("GSH", 256), ("WDC", 400)]:
        out[f"ours/{abbr}@{p}"] = estimate_2d_memory(REGISTRY[abbr], p, AIMOS).fits
    # ours also held the small graphs in a single device (paper §5.1)
    out["ours/TW@1"] = estimate_2d_memory(REGISTRY["TW"], 1, AIMOS).fits
    out["ours/FR@1"] = estimate_2d_memory(REGISTRY["FR"], 1, AIMOS).fits
    # gluon-like
    for abbr in ["TW", "FR", "CW", "GSH"]:
        out[f"gluon/{abbr}@256"] = estimate_generic_substrate_memory(
            REGISTRY[abbr], 256, AIMOS
        ).fits
    out["gluon/RMAT28@256"] = estimate_generic_substrate_memory(
        _rmat_meta(28), 256, AIMOS
    ).fits
    # cugraph-like on zepy
    for scale in (26, 28):
        out[f"cugraph/RMAT{scale}@4"] = estimate_la_backend_memory(
            _rmat_meta(scale), 4, ZEPY
        ).fits
    return out


def test_memory_feasibility(benchmark, record_results, run_once):
    fits = run_once(benchmark, _run)
    lines = ["Memory feasibility (modeled) — who can load what"]
    for key in sorted(fits):
        lines.append(f"  {key:>22}: {'fits' if fits[key] else 'OOM'}")

    expected = {
        "ours/TW@1": True,  # "TW and FR both fully fit within ... a single V100"
        "ours/FR@1": True,
        "ours/TW@256": True,
        "ours/FR@256": True,
        "ours/CW@256": True,
        "ours/GSH@256": True,
        "ours/WDC@400": True,
        "gluon/TW@256": True,
        "gluon/FR@256": True,
        "gluon/RMAT28@256": True,
        "gluon/CW@256": False,  # "unable to successfully run GSH or CW"
        "gluon/GSH@256": False,
        "cugraph/RMAT26@4": True,
        "cugraph/RMAT28@4": False,  # "RMAT28 ... did not run on CuGraph"
    }
    for key, want in expected.items():
        assert fits[key] == want, (key, fits[key])
    record_results("memory_feasibility", "\n".join(lines))
