"""Ablation benches for the design choices the paper fixes.

Three knobs the paper sets once and argues for in prose; each ablation
verifies the choice is load-bearing in the model:

* **dense->sparse switch threshold** — the paper switches at
  ``N / max(R, C)`` updated vertices, "to ensure that communication
  volume is always being saved" (§3.3.1);
* **Manhattan Collapse** — near-perfect edge balance vs. the naive
  vertex-per-thread kernel whose warps run at hub speed (§3.4.2);
* **striped vertex distribution** — "comparable load balance to a
  random distribution without ... varying group sizes", far better
  than contiguous blocks on inputs whose hubs cluster by ID (§3.4.2).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import connected_components
from repro.bench import make_engine
from repro.cluster import AIMOS
from repro.core.engine import Engine
from repro.graph import chung_lu_powerlaw, load
from repro.graph.partition.twod import partition_2d
from repro.comm.grid import Grid2D
from repro.patterns.switching import SwitchPolicy


def test_switch_threshold_ablation(benchmark, record_results, run_once):
    """Sweep the switch threshold factor around the paper's 1.0."""

    def _run():
        ds = load("GSH", target_edges=1 << 16, seed=12)
        times = {}
        for factor in (0.1, 0.5, 1.0, 2.0, 8.0):
            engine = make_engine(ds, 16)
            res = connected_components(
                engine,
                direction="push",
                mode="switch",
                switch_threshold_factor=factor,
            )
            times[factor] = res.timings.total
        return times

    times = run_once(benchmark, _run)
    lines = ["Ablation — dense->sparse switch threshold factor (CC push, GSH)"]
    for f, t in sorted(times.items()):
        lines.append(f"  factor {f:>4}: {t:8.3f}s")
    paper = times[1.0]
    # The paper's setting is within 25% of the best factor tried: the
    # threshold is robust (the paper picks it analytically, not tuned).
    assert paper <= min(times.values()) * 1.25, times
    record_results("ablation_switch_threshold", "\n".join(lines))


def test_manhattan_collapse_ablation(benchmark, record_results, run_once):
    """Manhattan Collapse vs naive vertex-per-thread on skewed queues."""

    def _run():
        g = chung_lu_powerlaw(20000, 300_000, gamma=1.9, seed=3)
        cluster = AIMOS.scaled(33e9 / g.n_edges)
        out = {}
        for mode in ("manhattan", "vertex"):
            engine = Engine(g, 16, cluster=cluster, load_balance=mode)
            res = connected_components(engine, direction="push")
            out[mode] = res.timings.compute
        return out

    comp = run_once(benchmark, _run)
    ratio = comp["vertex"] / comp["manhattan"]
    lines = [
        "Ablation — GPU load balance (CC compute time, heavy-skew input)",
        f"  Manhattan Collapse : {comp['manhattan']:8.3f}s",
        f"  vertex-per-thread  : {comp['vertex']:8.3f}s",
        f"  collapse speedup   : {ratio:.2f}x",
    ]
    # The paper: "computational load balance is almost fully optimized";
    # the naive kernel must be substantially slower on power-law queues.
    assert ratio > 2.0, comp
    record_results("ablation_manhattan", "\n".join(lines))


def test_vertex_distribution_ablation(benchmark, record_results, run_once):
    """Striped vs random vs contiguous-block vertex distributions."""

    def _run():
        # An input whose hubs cluster at low IDs (no relabeling) is the
        # adversarial case for block distributions the paper guards
        # against.
        rng = np.random.default_rng(5)
        n, m = 8000, 120_000
        w = (np.arange(n) + 10.0) ** -0.6
        cdf = np.cumsum(w) / w.sum()
        src = np.searchsorted(cdf, rng.random(m))
        dst = np.searchsorted(cdf, rng.random(m))
        from repro.graph import Graph

        g = Graph.from_edges(src, dst, n)
        grid = Grid2D(4, 4)
        out = {}
        for dist in ("striped", "random", "block"):
            part = partition_2d(g, grid, distribution=dist, seed=7)
            edges = np.array([b.n_local_edges for b in part.blocks])
            out[dist] = float(edges.max() / edges.mean())
        return out

    imb = run_once(benchmark, _run)
    lines = ["Ablation — vertex distribution: block edge imbalance (max/mean)"]
    for dist, v in imb.items():
        lines.append(f"  {dist:>8}: {v:5.2f}")
    # Paper §3.4.2: striped ~ random, both far better than blocks.
    assert imb["striped"] < 1.5 * imb["random"], imb
    assert imb["block"] > 1.5 * imb["striped"], imb
    record_results("ablation_distribution", "\n".join(lines))
