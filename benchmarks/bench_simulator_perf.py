"""Simulator micro-benchmarks (real wall time, pytest-benchmark).

Unlike the figure benches (which report *modeled* time from a single
deterministic run), these measure the actual wall-clock performance of
the library's hot primitives with statistical repeats — a regression
baseline for anyone changing the vectorized kernels.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.grid import Grid2D
from repro.core.engine import Engine
from repro.graph import partition_2d, rmat
from repro.kernels import scatter_reduce, scatter_reduce_reference
from repro.patterns import dense_pull, sparse_push
from repro.queueing import expand_csr, manhattan_schedule


@pytest.fixture(scope="module")
def big_graph():
    return rmat(14, seed=1)


@pytest.fixture(scope="module")
def engine16(big_graph):
    return Engine(big_graph, 16)


class TestPrimitivePerf:
    def test_perf_partition_2d(self, benchmark, big_graph):
        grid = Grid2D(4, 4)
        part = benchmark(lambda: partition_2d(big_graph, grid))
        assert part.n_edges == big_graph.n_edges

    def test_perf_frontier_expansion(self, benchmark, big_graph):
        rows = np.arange(big_graph.n_vertices, dtype=np.int64)
        src, dst, _ = benchmark(
            lambda: expand_csr(big_graph.indptr, big_graph.indices, rows)
        )
        assert src.size == big_graph.n_edges

    def test_perf_manhattan_schedule(self, benchmark, big_graph):
        degs = big_graph.degrees()
        stats = benchmark(lambda: manhattan_schedule(degs))
        assert stats.total_edges == big_graph.n_edges

    def test_perf_dense_pull(self, benchmark, engine16):
        # idempotent op so repeated benchmark rounds don't overflow
        engine16.alloc("x", np.float64, fill=1.0)

        def run():
            dense_pull(engine16, "x", op="min")

        benchmark(run)

    def test_perf_sparse_push(self, benchmark, engine16):
        engine16.alloc("y", np.float64, fill=10.0)
        rng = np.random.default_rng(0)
        queues = []
        for ctx in engine16:
            cs = ctx.col_slice
            k = (cs.stop - cs.start) // 10
            queues.append(
                np.sort(rng.choice(np.arange(cs.start, cs.stop), k, replace=False))
            )

        def run():
            sparse_push(engine16, "y", queues, op="min")

        benchmark(run)

    def test_perf_rmat_generation(self, benchmark):
        g = benchmark(lambda: rmat(12, seed=7))
        assert g.n_vertices == 4096


class TestScatterReducePerf:
    """The fused kernel vs the legacy unique/copy/.at/compare idiom."""

    @pytest.fixture(scope="class")
    def edge_scatter(self, big_graph):
        rng = np.random.default_rng(0)
        lids = big_graph.indices.astype(np.int64)
        vals = rng.random(lids.size)
        state = np.empty(big_graph.n_vertices)
        return state, lids, vals

    def test_perf_scatter_reduce_dense(self, benchmark, edge_scatter):
        state, lids, vals = edge_scatter

        def run():
            state[...] = np.inf
            return scatter_reduce(state, lids, vals, "min")

        changed = benchmark(run)
        assert changed.size > 0

    def test_perf_scatter_reduce_reference(self, benchmark, edge_scatter):
        state, lids, vals = edge_scatter

        def run():
            state[...] = np.inf
            return scatter_reduce_reference(state, lids, vals, "min")

        changed = benchmark(run)
        assert changed.size > 0

    def test_perf_scatter_reduce_sparse(self, benchmark, big_graph):
        # a small frontier against a large state: unique-bookkeeping path
        rng = np.random.default_rng(1)
        n = big_graph.n_vertices
        state = np.full(n, np.inf)
        lids = rng.integers(0, n, size=n // 100)
        vals = rng.random(lids.size)

        def run():
            state[...] = np.inf
            return scatter_reduce(state, lids, vals, "min")

        benchmark(run)

    def test_perf_scatter_reduce_sum(self, benchmark, edge_scatter):
        state, lids, vals = edge_scatter

        def run():
            state[...] = 0.0
            return scatter_reduce(state, lids, vals, "sum")

        benchmark(run)
