"""Paper Fig. 10: comparison against a CuGraph-like LA backend on zepy.

RMAT26 on the 4xA100 workstation (the largest input CuGraph could fit
there).  Paper findings reproduced: the linear-algebra backend's tuned
SpMV wins PageRank (our general-model code shows an average ~1.47x
slowdown), while our queue/frontier machinery wins CC (~3.25x) and BFS
(~2.64x).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import bfs, connected_components, pagerank
from repro.baselines import spmv_bfs, spmv_cc, spmv_engine, spmv_pagerank
from repro.cluster import ZEPY
from repro.core.engine import Engine
from repro.graph import load

N_RANKS = 4
TARGET_EDGES = 1 << 17


def _run() -> dict[str, dict[str, float]]:
    ds = load("RMAT26", target_edges=TARGET_EDGES, seed=8)
    cluster = ZEPY.scaled(ds.scale_factor)
    root = int(np.argmax(ds.graph.degrees()))

    ours_engine = lambda: Engine(ds.graph, N_RANKS, cluster=cluster)
    la_engine = lambda: spmv_engine(ds.graph, N_RANKS, cluster=cluster)

    return {
        "PR": {
            "ours": pagerank(ours_engine(), iterations=20).timings.total,
            "cugraph": spmv_pagerank(la_engine(), iterations=20).timings.total,
        },
        "CC": {
            "ours": connected_components(ours_engine()).timings.total,
            "cugraph": spmv_cc(la_engine()).timings.total,
        },
        "BFS": {
            "ours": bfs(ours_engine(), root=root).timings.total,
            "cugraph": spmv_bfs(la_engine(), root=root).timings.total,
        },
    }


def test_fig10_vs_cugraph(benchmark, record_results, run_once):
    times = run_once(benchmark, _run)
    lines = ["Fig. 10 — ours vs CuGraph-like LA backend (RMAT26, 4xA100 zepy)"]
    lines.append(f"{'algo':>5} {'ours[s]':>10} {'cugraph[s]':>11} {'ratio':>18}")

    pr_slowdown = times["PR"]["ours"] / times["PR"]["cugraph"]
    cc_speedup = times["CC"]["cugraph"] / times["CC"]["ours"]
    bfs_speedup = times["BFS"]["cugraph"] / times["BFS"]["ours"]
    lines.append(
        f"{'PR':>5} {times['PR']['ours']:>10.3f} {times['PR']['cugraph']:>11.3f} "
        f"ours {pr_slowdown:4.2f}x slower (paper: 1.47x)"
    )
    lines.append(
        f"{'CC':>5} {times['CC']['ours']:>10.3f} {times['CC']['cugraph']:>11.3f} "
        f"ours {cc_speedup:4.2f}x faster (paper: 3.25x)"
    )
    lines.append(
        f"{'BFS':>5} {times['BFS']['ours']:>10.3f} {times['BFS']['cugraph']:>11.3f} "
        f"ours {bfs_speedup:4.2f}x faster (paper: 2.64x)"
    )

    # PageRank: the optimized LA routine wins at single-node scale,
    # in the neighbourhood of the paper's 1.47x.
    assert 1.1 < pr_slowdown < 2.2, pr_slowdown
    # CC and BFS: the general graph model wins by a clear factor.
    assert cc_speedup > 1.5, cc_speedup
    assert bfs_speedup > 1.5, bfs_speedup
    record_results("fig10_cugraph", "\n".join(lines))
