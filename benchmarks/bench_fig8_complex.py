"""Paper Fig. 8: complex algorithms (MWM, LP, PJ) strong scaling.

Strong scaling from 1 to 256 ranks on the real-input stand-ins.  Paper
observations reproduced here: strong scaling holds for almost all
methods and inputs; MWM and PJ plateau more than the benchmark
algorithms (problem complexity and state-synchronization
communication); LP scales well thanks to the 2.5D approach's
proportionally lower communication share.
"""

from __future__ import annotations

from repro.bench import ExperimentRow, format_rows, strong_scaling

DATASETS = ["TW", "FR"]
ALGOS = ["MWM", "LP", "PJ"]
RANKS = [1, 4, 16, 64, 256]
TARGET_EDGES = 1 << 16


def _run() -> list[ExperimentRow]:
    rows = []
    for ds in DATASETS:
        rows += strong_scaling(
            ds, ALGOS, RANKS, target_edges=TARGET_EDGES, experiment="fig8", seed=6
        )
    return rows


def test_fig8_complex_algorithms(benchmark, record_results, run_once):
    rows = run_once(benchmark, _run)
    by_key = {(r.dataset, r.algorithm, r.n_ranks): r for r in rows}
    lines = [format_rows(rows, "Fig. 8 — MWM / LP / PJ strong scaling")]
    lines.append("")

    speedups = {}
    for ds in DATASETS:
        for algo in ALGOS:
            t1 = by_key[(ds, algo, 1)].time_total
            t256 = by_key[(ds, algo, 256)].time_total
            speedups[(ds, algo)] = t1 / t256
            lines.append(f"  {ds} {algo:>4}: 1 -> 256 speedup {t1 / t256:5.2f}x")
            # Strong scaling to 256 ranks for all methods and inputs.
            assert t256 < t1, (ds, algo)

    for ds in DATASETS:
        # LP exhibits the best scaling trends (2.5D: more computation,
        # proportionally less communication).
        assert speedups[(ds, "LP")] > speedups[(ds, "MWM")], (ds, speedups)
        assert speedups[(ds, "LP")] > speedups[(ds, "PJ")], (ds, speedups)
        # MWM and PJ plateau: their large-scale speedup stays well under
        # the LP curve but they still make progress.
        assert speedups[(ds, "MWM")] > 1.2, (ds, speedups)
        assert speedups[(ds, "PJ")] > 1.2, (ds, speedups)
    record_results("fig8_complex", "\n".join(lines))
