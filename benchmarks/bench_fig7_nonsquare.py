"""Paper Fig. 7: non-square distributions, varying R and C at 256 ranks.

CC (a push implementation, so its expensive reduction runs along the
column groups) over every factor pair ``R x C = 256``.  The paper's
findings: the square ``16x16`` is optimal; performance does not
collapse near it; and one should bias toward *minimizing the reduction
direction* — (R=32, C=8) costs about 1.4x the square layout and beats
the transposed (R=8, C=32).
"""

from __future__ import annotations

from repro.algorithms import connected_components
from repro.bench import ExperimentRow, make_engine
from repro.comm.grid import Grid2D
from repro.graph import load

N_RANKS = 256
TARGET_EDGES = 1 << 17
DATASETS = ["FR", "GSH"]
SHAPES = [(2, 128), (4, 64), (8, 32), (16, 16), (32, 8), (64, 4), (128, 2)]  # (R, C)


def _run() -> dict[tuple[str, tuple[int, int]], float]:
    times = {}
    for abbr in DATASETS:
        ds = load(abbr, target_edges=TARGET_EDGES, seed=5)
        for r, c in SHAPES:
            engine = make_engine(ds, N_RANKS, grid=Grid2D(R=r, C=c))
            res = connected_components(engine, direction="push")
            times[(abbr, (r, c))] = res.timings.total
    return times


def test_fig7_nonsquare(benchmark, record_results, run_once):
    times = run_once(benchmark, _run)
    lines = ["Fig. 7 — CC on 256 ranks across (R, C) shapes (total seconds)"]
    header = f"{'dataset':>8} " + " ".join(f"R={r:<3}C={c:<3}" for r, c in SHAPES)
    lines += [header, "-" * len(header)]
    for abbr in DATASETS:
        lines.append(
            f"{abbr:>8} "
            + " ".join(f"{times[(abbr, shape)]:>9.3f}" for shape in SHAPES)
        )
    lines.append("")
    for abbr in DATASETS:
        best = min(times[(abbr, shape)] for shape in SHAPES)
        square = times[(abbr, (16, 16))]
        near = times[(abbr, (32, 8))]
        # U-shape: the square layout and its small-C neighbour sit at
        # the bottom of the curve...
        assert square < 1.6 * best, (abbr, times)
        assert near < 1.6 * best, (abbr, times)
        ratio = max(near, square) / min(near, square)
        lines.append(f"{abbr}: |(32,8) vs (16,16)| = {ratio:.2f}x")
        assert ratio < 2.0, (abbr, ratio)
        # ...while extreme aspect ratios degrade sharply (paper Fig. 7
        # shows the same steep walls away from square).
        assert times[(abbr, (2, 128))] > 1.8 * best, (abbr, times)
        assert times[(abbr, (128, 2))] > 1.8 * best, (abbr, times)
        # Bias toward minimizing the reduction direction: CC push
        # reduces along the column group (size C), so small C beats the
        # transposed layout at every aspect ratio.
        for r, c in [(32, 8), (64, 4), (128, 2)]:
            assert times[(abbr, (r, c))] < times[(abbr, (c, r))], (abbr, (r, c), times)
    record_results("fig7_nonsquare", "\n".join(lines))
