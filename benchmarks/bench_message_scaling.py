"""Paper §2.1-2.2: message-count scaling, 1D vs 2D.

The core communication argument: a 1D distribution's all-to-all ghost
exchange needs O(p^2) messages, while 2D group collectives serialize
only O(sqrt(p)) messages per group and O(p) in total.  This bench runs
the same CC computation through both engines across rank counts and
reports the measured serialized message counts per exchange round.
"""

from __future__ import annotations

from repro.baselines import OneDEngine, cc_1d
from repro.bench import grid_for
from repro.algorithms import connected_components
from repro.cluster import AIMOS
from repro.core.engine import Engine
from repro.graph import load

RANKS = [4, 16, 64]
TARGET_EDGES = 1 << 15


def _run() -> dict[str, dict[int, float]]:
    ds = load("TW", target_edges=TARGET_EDGES, seed=10)
    out: dict[str, dict[int, float]] = {"1D": {}, "2D": {}}
    for p in RANKS:
        eng1 = OneDEngine(ds.graph, p, cluster=AIMOS.scaled(ds.scale_factor))
        cc_1d(eng1)
        a2a = eng1.counters.by_kind["alltoallv"]
        out["1D"][p] = a2a.serial_messages / a2a.calls

        eng2 = Engine(
            ds.graph, grid=grid_for(p), cluster=AIMOS.scaled(ds.scale_factor)
        )
        connected_components(eng2)
        # Per-exchange-stage serialized messages: one collective per
        # group, groups run concurrently, so a stage's serialized count
        # is one group's count; sum both stages of an iteration.
        agv = eng2.counters.by_kind["allgatherv"]
        out["2D"][p] = agv.serial_messages / agv.calls * 2
    return out


def test_message_scaling(benchmark, record_results, run_once):
    msgs = run_once(benchmark, _run)
    lines = ["§2 — serialized messages per exchange round, 1D vs 2D"]
    lines.append(f"{'ranks':>6} {'1D':>10} {'2D':>10}")
    for p in RANKS:
        lines.append(f"{p:>6} {msgs['1D'][p]:>10.1f} {msgs['2D'][p]:>10.1f}")

    # 1D grows quadratically: p(p-1) exactly.
    for p in RANKS:
        assert msgs["1D"][p] == p * (p - 1), (p, msgs)
    # 2D grows with the group size, i.e. O(sqrt(p)) per round.
    for p in RANKS:
        assert msgs["2D"][p] <= 4 * p**0.5, (p, msgs)
    # Crossover: by 64 ranks the 1D exchange needs well over an order
    # of magnitude more serialized messages.
    assert msgs["1D"][64] > 10 * msgs["2D"][64], msgs
    record_results("message_scaling", "\n".join(lines))
