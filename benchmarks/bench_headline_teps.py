"""Paper abstract / §5.3 headline: WDC12 throughput on 400 GPUs.

"We observe performance from 26-123 billion edges processed per second
on 400xV100 GPUs, depending on algorithm complexity."  Runs every
implemented algorithm on the WDC stand-in at 400 ranks and reports the
full-scale projected TEPS (the machine model is scaled by the stand-in
factor, so modeled seconds read as full-scale seconds against the real
128 B edge count).

For iterative algorithms with fixed iteration counts (PR, LP), per-
iteration TEPS is the comparable throughput number; for traversals and
to-convergence algorithms the whole run counts, as in the paper.
"""

from __future__ import annotations

from repro.bench import ExperimentRow, make_engine, run_algorithm
from repro.graph import load

ALGOS = ["BFS", "CC", "PR", "MWM", "LP", "PJ"]
N_RANKS = 400
TARGET_EDGES = 1 << 17


def _run() -> list[ExperimentRow]:
    ds = load("WDC", target_edges=TARGET_EDGES, seed=9, weighted=True)
    rows = []
    for algo in ALGOS:
        engine = make_engine(ds, N_RANKS)
        rows.append(
            run_algorithm(
                algo,
                engine,
                experiment="headline",
                dataset="WDC",
                full_scale_edges=ds.meta.n_edges,
            )
        )
    return rows


def test_headline_wdc_teps(benchmark, record_results, run_once):
    rows = run_once(benchmark, _run)
    lines = ["Headline — WDC12 on 400 GPUs, projected full-scale throughput"]
    lines.append(f"{'algo':>5} {'total[s]':>10} {'iters':>6} {'GTEPS':>8} {'GTEPS/iter-pass':>16}")
    teps = {}
    for r in rows:
        per_pass = r.teps * r.iterations
        teps[r.algorithm] = r.teps
        lines.append(
            f"{r.algorithm:>5} {r.time_total:>10.2f} {r.iterations:>6} "
            f"{r.teps / 1e9:>8.1f} {per_pass / 1e9:>16.1f}"
        )

    fastest = max(teps.values()) / 1e9
    slowest = min(teps.values()) / 1e9
    lines.append("")
    lines.append(
        f"range: {slowest:.1f} - {fastest:.1f} GTEPS "
        "(paper: 26 - 123 GTEPS depending on algorithm complexity)"
    )
    # Same order of magnitude and a wide complexity spread, with the
    # cheap traversal fastest and the complex analytics slowest.
    assert 5.0 < fastest < 500.0, fastest
    assert 0.5 < slowest < 60.0, slowest
    assert fastest / slowest > 3.0, (fastest, slowest)
    assert teps["BFS"] >= teps["LP"], teps
    record_results("headline_teps", "\n".join(lines))
