"""Paper Fig. 5: WDC12 (128B edges) from 100 to 400 ranks.

The paper's flagship runs: the benchmark algorithms on the largest
publicly available graph, with the total split into computation and
communication (maximum over ranks).  Overall times scale ~2x from 100
to 400 ranks — the expected O(sqrt(p)) factor — with communication
improving less than computation.
"""

from __future__ import annotations

from repro.bench import ExperimentRow, comm_split, format_rows, make_engine, run_algorithm
from repro.graph import load

ALGOS = ["BFS", "PR", "CC"]
RANKS = [100, 200, 400]
TARGET_EDGES = 1 << 17


def _run() -> list[ExperimentRow]:
    ds = load("WDC", target_edges=TARGET_EDGES, seed=3)
    rows = []
    for algo in ALGOS:
        for p in RANKS:
            engine = make_engine(ds, p)
            rows.append(
                run_algorithm(
                    algo,
                    engine,
                    experiment="fig5",
                    dataset="WDC",
                    full_scale_edges=ds.meta.n_edges,
                )
            )
    return rows


def test_fig5_wdc_scaling(benchmark, record_results, run_once):
    rows = run_once(benchmark, _run)
    by_key = {(r.algorithm, r.n_ranks): r for r in rows}
    lines = [format_rows(rows, "Fig. 5 — WDC12 computation/communication, 100-400 ranks")]
    lines.append("")
    lines.append("speedups 100 -> 400 ranks (expected ~2x = sqrt(4)):")
    for algo in ALGOS:
        t100 = by_key[(algo, 100)]
        t400 = by_key[(algo, 400)]
        # Comp/comm splits from the exact per-iteration traces (they
        # sum to the clock totals bit-for-bit; the byte columns come
        # from measured counter deltas, not time-share apportioning).
        s100, s400 = comm_split(t100), comm_split(t400)
        total_speedup = t100.time_total / t400.time_total
        comp_speedup = s100["compute_s"] / s400["compute_s"]
        comm_speedup = s100["comm_s"] / max(s400["comm_s"], 1e-12)
        lines.append(
            f"  {algo:>4}: total {total_speedup:4.2f}x  comp {comp_speedup:4.2f}x  "
            f"comm {comm_speedup:4.2f}x  "
            f"[{s400['bytes']:,} B over {s400['iterations']} iters at 400]"
        )
        # Paper: "achieving speedups of about 2x for all algorithms".
        assert 1.3 < total_speedup < 3.5, (algo, total_speedup)
        # Computation and communication both continue to scale (paper:
        # "computation and communication also scales for all
        # algorithms").  The paper additionally observes communication
        # improving somewhat less than computation; in the simulation
        # the two are close enough that their ordering varies by
        # algorithm, so only the both-scale property is asserted (see
        # EXPERIMENTS.md).
        assert comp_speedup > 1.3, algo
        assert comm_speedup > 1.2, algo
    record_results("fig5_wdc", "\n".join(lines), rows=rows)
