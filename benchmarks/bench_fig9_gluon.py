"""Paper Fig. 9: HPCGraph-GPU vs Gluon-GPU, 1 to 256 ranks.

PR, CC, and BFS on TW, FR, and RMAT28 stand-ins, comparing our
NCCL-profile engine against the Gluon-like generic-substrate baseline
(same partitioning and kernels, general-purpose communications).  Paper
findings reproduced: approximate parity on single-rank and single-node
runs (1 and 4 ranks); significant relative degradation once the
network is involved; no scaling at all past 64 ranks on most tests.
"""

from __future__ import annotations

from repro.bench import ExperimentRow, format_rows, grid_for, run_algorithm
from repro.cluster import AIMOS, GENERIC_PROFILE
from repro.core.engine import Engine
from repro.graph import load

DATASETS = ["TW", "FR", "RMAT28"]
ALGOS = ["PR", "CC", "BFS"]
RANKS = [1, 4, 16, 64, 256]
TARGET_EDGES = 1 << 16


def _run() -> list[ExperimentRow]:
    rows = []
    for abbr in DATASETS:
        ds = load(abbr, target_edges=TARGET_EDGES, seed=7)
        cluster = AIMOS.scaled(ds.scale_factor)
        for algo in ALGOS:
            for p in RANKS:
                for system, profile in (
                    ("ours", None),
                    ("gluon", GENERIC_PROFILE),
                ):
                    kwargs = {"profile": profile} if profile else {}
                    engine = Engine(
                        ds.graph, grid=grid_for(p), cluster=cluster, **kwargs
                    )
                    row = run_algorithm(
                        algo,
                        engine,
                        experiment="fig9",
                        dataset=f"{abbr}:{system}",
                        full_scale_edges=ds.meta.n_edges,
                    )
                    rows.append(row)
    return rows


def test_fig9_vs_gluon(benchmark, record_results, run_once):
    rows = run_once(benchmark, _run)
    t = {
        (r.dataset.split(":")[0], r.dataset.split(":")[1], r.algorithm, r.n_ranks): r.time_total
        for r in rows
    }
    lines = [format_rows(rows, "Fig. 9 — ours vs Gluon-like substrate")]
    lines.append("")
    for abbr in DATASETS:
        for algo in ALGOS:
            r1 = t[(abbr, "gluon", algo, 1)] / t[(abbr, "ours", algo, 1)]
            r4 = t[(abbr, "gluon", algo, 4)] / t[(abbr, "ours", algo, 4)]
            r256 = t[(abbr, "gluon", algo, 256)] / t[(abbr, "ours", algo, 256)]
            lines.append(
                f"  {abbr:>6} {algo:>4}: gluon/ours at p=1: {r1:4.2f}  "
                f"p=4: {r4:4.2f}  p=256: {r256:4.2f}"
            )
            # Parity on one rank and one node (paper: "approximately
            # matches ... on single rank and single node runs").
            assert r1 < 1.05, (abbr, algo, r1)
            assert r4 < 1.5, (abbr, algo, r4)
            # Significant relative degradation across the network.
            assert r256 > 1.5, (abbr, algo, r256)
            assert r256 > r4, (abbr, algo)
            assert t[(abbr, "ours", algo, 256)] < t[(abbr, "ours", algo, 64)], (
                abbr,
                algo,
            )

    # "Gluon-GPU does not scale at all past 64 ranks on the majority of
    # tests": its 256-rank time is no better than its 64-rank time on
    # most (dataset, algorithm) combinations, while ours improved on
    # every one (asserted above).
    stalled = sum(
        t[(abbr, "gluon", algo, 256)] > 0.9 * t[(abbr, "gluon", algo, 64)]
        for abbr in DATASETS
        for algo in ALGOS
    )
    lines.append("")
    lines.append(f"gluon stalled past 64 ranks on {stalled}/{len(DATASETS) * len(ALGOS)} tests")
    assert stalled >= (len(DATASETS) * len(ALGOS)) // 2 + 1, stalled
    record_results("fig9_gluon", "\n".join(lines))
