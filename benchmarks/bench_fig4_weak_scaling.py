"""Paper Fig. 4: weak scaling on RMAT and Erdos-Renyi random graphs.

The paper generates 2^24 vertices / 2^28 edges *per rank* and observes
all timings "just under doubling for every 4x increase in rank count" —
i.e., tracking the ``sqrt(p)``-scaled single-rank time, the theoretical
efficiency limit of 2D distributions.  The exception is BFS, whose
single-GPU runs are relatively faster due to the algorithm's higher
communication share.
"""

from __future__ import annotations

import math

from repro.bench import format_rows, weak_scaling

FAMILIES = ["RMAT", "RAND"]
ALGOS = ["BFS", "PR", "CC"]
RANKS = [1, 4, 16, 64]


def _run():
    rows = []
    for family in FAMILIES:
        rows += weak_scaling(
            family,
            ALGOS,
            RANKS,
            vertices_per_rank=1 << 11,
            experiment="fig4",
            seed=2,
        )
    return rows


def test_fig4_weak_scaling(benchmark, record_results, run_once):
    rows = run_once(benchmark, _run)
    by_key = {(r.dataset[:4], r.algorithm, r.n_ranks): r for r in rows}
    lines = [format_rows(rows, "Fig. 4 — weak scaling (per-rank problem fixed)")]
    lines.append("")
    lines.append("T(p) / (sqrt(p) * T(1))  — at or below 1.0 means the 2D limit holds:")

    for family in FAMILIES:
        for algo in ALGOS:
            t1 = by_key[(family, algo, 1)].time_total
            for p in RANKS[1:]:
                t = by_key[(family, algo, p)].time_total
                ratio = t / (math.sqrt(p) * t1)
                lines.append(f"  {family} {algo:>4} p={p:>3}: {ratio:5.2f}")
                if algo == "BFS":
                    # Paper: BFS exceeds the bound (single-GPU runs are
                    # comparatively fast); allow generous slack.
                    assert ratio < 4.0, (family, algo, p, ratio)
                else:
                    # "just under doubling for every 4x increase"
                    assert ratio < 1.4, (family, algo, p, ratio)

    # Weak-scaled times must grow far slower than the problem (which
    # grows by p): a 64x bigger problem on 64x more GPUs should cost
    # only ~sqrt(64)=8x, not 64x.
    for family in FAMILIES:
        for algo in ALGOS:
            t1 = by_key[(family, algo, 1)].time_total
            t64 = by_key[(family, algo, 64)].time_total
            # BFS is the paper's stated exception (communication-heavy,
            # single-GPU runs comparatively fast).
            limit = 40 if algo == "BFS" else 16
            assert t64 < limit * t1, (family, algo)

    record_results("fig4_weak_scaling", "\n".join(lines))
