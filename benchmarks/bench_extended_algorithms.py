"""Extended algorithm suite scaling (beyond paper Fig. 8).

The paper's generality argument ("all computations possible in a 1D
distribution can be equivalently expressed in a 2D distribution")
extends past its own Table 3: this bench strong-scales the library's
extension algorithms — SSSP, k-core, coloring, and sampled
betweenness — on a web stand-in, verifying that every one keeps
scaling on the 2D substrate like the paper's own complex algorithms
(Fig. 8's qualitative claim).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import (
    betweenness,
    core_numbers,
    greedy_coloring,
    sssp,
)
from repro.bench import make_engine
from repro.graph import load

RANKS = [1, 4, 16, 64]
TARGET_EDGES = 1 << 15


def _run():
    ds = load("GSH", target_edges=TARGET_EDGES, seed=21, weighted=True)
    g = ds.graph
    root = int(np.argmax(g.degrees()))
    runs = {
        "SSSP": lambda e: sssp(e, root=root),
        "KCORE": lambda e: core_numbers(e),
        "COLOR": lambda e: greedy_coloring(e, seed=1),
        "BC-16": lambda e: betweenness(e, k_samples=16, seed=3),
    }
    out = {}
    for name, fn in runs.items():
        for p in RANKS:
            engine = make_engine(ds, p)
            res = fn(engine)
            out[(name, p)] = (res.timings.total, res.timings.comm)
    return out


def test_extended_algorithm_scaling(benchmark, record_results, run_once):
    data = run_once(benchmark, _run)
    lines = ["Extended suite — strong scaling of the beyond-paper algorithms"]
    lines.append(f"{'algo':>6} {'ranks':>6} {'total[s]':>10} {'comm[s]':>10}")
    algos = sorted({k[0] for k in data})
    for name in algos:
        for p in RANKS:
            total, comm = data[(name, p)]
            lines.append(f"{name:>6} {p:>6} {total:>10.3f} {comm:>10.3f}")
    lines.append("")
    for name in algos:
        speedup = data[(name, 1)][0] / data[(name, 64)][0]
        lines.append(f"  {name}: 1 -> 64 ranks speedup {speedup:5.2f}x")
        # every extension algorithm still strong-scales on the substrate
        assert data[(name, 64)][0] < data[(name, 1)][0], (name, data)
    record_results("extended_algorithms", "\n".join(lines))
