"""Distribution-family comparison: 1D vs 1.5D vs 2D (paper §1-2 arc).

The paper's introduction motivates 2D layouts through the failures of
the earlier families: 1D blows up in message count — O(p^2) — and in
hub-induced ghost state; 1.5D fixes the hub imbalance by sharing
high-degree vertices but keeps the all-to-all for the rest; 2D bounds
both messages (O(p) total) and per-rank state (O(N/sqrt(p))).  This
bench runs the same CC computation through all three engines on a
power-law input and reports modeled time, serialized messages, and
ghost/replicated state, reproducing the narrative quantitatively.
"""

from __future__ import annotations

from repro.algorithms import connected_components
from repro.baselines import OneDEngine, OneFiveDEngine, cc_15d, cc_1d
from repro.bench import grid_for
from repro.cluster import AIMOS
from repro.core.engine import Engine
from repro.graph import load

RANKS = [4, 16, 64]
TARGET_EDGES = 1 << 15


def _run():
    ds = load("TW", target_edges=TARGET_EDGES, seed=13)
    cluster = AIMOS.scaled(ds.scale_factor)
    out = {}
    for p in RANKS:
        e1 = OneDEngine(ds.graph, p, cluster=cluster)
        r1 = cc_1d(e1)
        out[("1D", p)] = {
            "time": r1.timings.total,
            "msgs": e1.counters.total_serial_messages,
            "state": sum(sh.ghost_gids.size for sh in e1.parts),
        }
        e15 = OneFiveDEngine(ds.graph, p, cluster=cluster)
        r15 = cc_15d(e15)
        out[("1.5D", p)] = {
            "time": r15.timings.total,
            "msgs": e15.counters.total_serial_messages,
            "state": sum(sh.ghost_gids.size for sh in e15.shares)
            + e15.n_hubs * p,
        }
        e2 = Engine(ds.graph, grid=grid_for(p), cluster=cluster)
        r2 = connected_components(e2)
        ghost_state = sum(ctx.localmap.n_col for ctx in e2)
        out[("2D", p)] = {
            "time": r2.timings.total,
            "msgs": e2.counters.total_serial_messages,
            "state": ghost_state,
        }
    return out


def test_distribution_comparison(benchmark, record_results, run_once):
    data = run_once(benchmark, _run)
    lines = ["§1-2 — CC across distribution families (TW stand-in)"]
    lines.append(
        f"{'family':>7} {'ranks':>6} {'time[s]':>9} {'serial msgs':>12} {'ghost state':>12}"
    )
    for family in ("1D", "1.5D", "2D"):
        for p in RANKS:
            d = data[(family, p)]
            lines.append(
                f"{family:>7} {p:>6} {d['time']:>9.3f} {d['msgs']:>12} {d['state']:>12}"
            )

    # Message scaling: at 64 ranks the 1D all-to-all needs far more
    # serialized messages than the 2D group collectives.
    assert data[("1D", 64)]["msgs"] > 5 * data[("2D", 64)]["msgs"], data
    # 1.5D removes hub ghosts relative to 1D.
    assert data[("1.5D", 64)]["state"] < data[("1D", 64)]["state"], data
    # 2D is the fastest family at scale (the paper's thesis).
    assert data[("2D", 64)]["time"] < data[("1D", 64)]["time"], data
    assert data[("2D", 64)]["time"] < data[("1.5D", 64)]["time"], data
    record_results("distribution_comparison", "\n".join(lines))
