"""Shared infrastructure for the figure-reproduction benches.

Each bench regenerates one of the paper's tables or figures: it runs
the experiment through :mod:`repro.bench.harness`, prints the same
rows/series the paper reports, persists them under
``benchmarks/results/``, and asserts the paper's qualitative claims
(who wins, by roughly what factor, where crossovers fall).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_results():
    """Persist a bench's printed table under benchmarks/results/.

    Passing ``rows`` additionally writes ``<name>.json`` — the
    structured export with exact per-iteration traces
    (:func:`repro.bench.reporting.to_json`) that downstream tooling
    regresses against.
    """

    def _write(name: str, text: str, rows=None) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        if rows is not None:
            from repro.bench.reporting import to_json

            (RESULTS_DIR / f"{name}.json").write_text(to_json(rows, title=name) + "\n")
        print()
        print(text)

    return _write


@pytest.fixture
def run_once():
    """Time one full experiment run with pytest-benchmark.

    The simulated experiments are deterministic, so a single round is
    both sufficient and considerably cheaper than statistical repeats.
    """

    def _run(benchmark, fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)

    return _run
