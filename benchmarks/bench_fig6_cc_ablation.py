"""Paper Fig. 6: effect of the optimizations on color-propagation CC.

The ablation ladder — dense pull with no queue (Base), always-sparse
(+SP), dense-to-sparse switching (+SP+SW), active-vertex queues
(+SP+SW+VQ), and finally push updates with everything (+All+Push) —
"equating to an order of magnitude" of total improvement on the
paper's inputs.  Run on two web-crawl stand-ins, whose pendant-chain
convergence tails are the regime the queue machinery targets.
"""

from __future__ import annotations

from repro.algorithms import CC_VARIANTS, connected_components
from repro.bench import ExperimentRow, make_engine
from repro.graph import load

DATASETS = ["GSH", "WDC"]
N_RANKS = 16
TARGET_EDGES = 1 << 17

ORDER = ["Base", "+SP", "+SP+SW", "+SP+SW+VQ", "+All+Push"]


def _run() -> dict[tuple[str, str], float]:
    times = {}
    for abbr in DATASETS:
        ds = load(abbr, target_edges=TARGET_EDGES, seed=4)
        for name in ORDER:
            engine = make_engine(ds, N_RANKS)
            res = connected_components(engine, **CC_VARIANTS[name])
            times[(abbr, name)] = res.timings.total
    return times


def test_fig6_cc_ablation(benchmark, record_results, run_once):
    times = run_once(benchmark, _run)
    lines = ["Fig. 6 — CC optimization ablation (16 ranks, total seconds)"]
    header = f"{'dataset':>8} " + " ".join(f"{n:>11}" for n in ORDER)
    lines += [header, "-" * len(header)]
    for abbr in DATASETS:
        lines.append(
            f"{abbr:>8} "
            + " ".join(f"{times[(abbr, n)]:>11.3f}" for n in ORDER)
        )
    lines.append("")
    for abbr in DATASETS:
        ladder = [times[(abbr, n)] for n in ORDER]
        improvement = ladder[0] / ladder[-1]
        lines.append(f"{abbr}: Base -> +All+Push improvement {improvement:.1f}x")
        # Each optimization must help, and the full ladder approaches
        # the paper's order of magnitude.
        for earlier, later in zip(ORDER, ORDER[1:]):
            assert times[(abbr, later)] < times[(abbr, earlier)], (
                abbr,
                earlier,
                later,
                times,
            )
        assert improvement > 5.0, (abbr, improvement)
    record_results("fig6_cc_ablation", "\n".join(lines))
