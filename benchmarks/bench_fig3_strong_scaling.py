"""Paper Fig. 3: strong scaling of BFS, PR, CC from 1 to 256 ranks.

Reproduces all three panels: total execution times (top), communication
times (middle), and speedups from 16 ranks against the theoretical
``sqrt(p)`` bound of 2D distributions (bottom), on the four real-input
stand-ins TW, FR, CW, GSH.
"""

from __future__ import annotations

import math

import pytest

from repro.bench import comm_split, format_rows, strong_scaling

DATASETS = ["TW", "FR", "CW", "GSH"]
ALGOS = ["BFS", "PR", "CC"]
RANKS = [1, 4, 16, 64, 256]
TARGET_EDGES = 1 << 16


def _run():
    rows = []
    for ds in DATASETS:
        rows += strong_scaling(
            ds, ALGOS, RANKS, target_edges=TARGET_EDGES, experiment="fig3", seed=1
        )
    return rows


def test_fig3_strong_scaling(benchmark, record_results, run_once):
    rows = run_once(benchmark, _run)

    by_key = {(r.dataset, r.algorithm, r.n_ranks): r for r in rows}
    lines = [format_rows(rows, "Fig. 3 — strong scaling, total/comm times")]

    # Bottom panel: speedups from 16 ranks vs the sqrt(p) bound.
    bound = math.sqrt(256 / 16)
    lines.append("")
    lines.append(f"speedups 16 -> 256 ranks (sqrt bound = {bound:.2f}):")
    for ds in DATASETS:
        for algo in ALGOS:
            t16 = by_key[(ds, algo, 16)].time_total
            t256 = by_key[(ds, algo, 256)].time_total
            speedup = t16 / t256
            lines.append(f"  {ds:>4} {algo:>4}: {speedup:5.2f}x")

            # Paper: "most speedup values from 16->256 GPUs being in the
            # near-optimal range of 3-4x".  Allow the same slack the
            # paper's plots show around the bound.
            assert 1.5 < speedup < 1.5 * bound, (ds, algo, speedup)

    for ds in DATASETS:
        for algo in ALGOS:
            series = [by_key[(ds, algo, p)] for p in RANKS]
            # Scaling on all inputs up to 256 GPUs (paper §5.1).  BFS
            # is the most communication-intensive of the three (the
            # paper calls out its "relatively higher communication
            # cost"), so only the heavier-compute algorithms must halve.
            assert series[-1].time_total < series[0].time_total, (ds, algo)
            if algo in ("PR", "CC"):
                assert series[-1].time_total < series[0].time_total / 2
            # Communication dominates at the largest scale — judged on
            # the measured per-iteration trace, which must itself sum
            # exactly to the run's clock and counter totals.
            big = by_key[(ds, algo, 256)]
            split = comm_split(big)
            assert split["comm_s"] == pytest.approx(big.time_comm, rel=1e-12)
            assert split["compute_s"] == pytest.approx(big.time_compute, rel=1e-12)
            assert split["comm_s"] > split["compute_s"], (ds, algo)

    # Middle panel companion: measured comm volume at the largest scale.
    lines.append("")
    lines.append("comm at 256 ranks (exact trace sums):")
    for ds in DATASETS:
        for algo in ALGOS:
            split = comm_split(by_key[(ds, algo, 256)])
            lines.append(
                f"  {ds:>4} {algo:>4}: {split['comm_s']:.4f}s  "
                f"{split['bytes']:>12,} B  {split['serial_messages']:>6} msgs"
            )

    record_results("fig3_strong_scaling", "\n".join(lines), rows=rows)
