#!/usr/bin/env python
"""Complex analytics: weighted matching and forest root-finding.

Demonstrates the paper's "complex communication" algorithms on a
weighted social-network stand-in:

* approximate maximum weight matching (custom argmax reductions in the
  sparse pattern), validated for matching invariants;
* pointer jumping (packet swapping across the 2D grid), used here to
  find the root of every tree of a deterministic spanning forest.

Also shows the grid-shape trade-off from the paper's Fig. 7 by timing
the same matching on square and non-square layouts.

Usage::

    python examples/matching_and_forests.py [n_ranks]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import Engine, algorithms
from repro.comm.grid import Grid2D
from repro.graph import load
from repro.reference import serial


def main(n_ranks: int = 16) -> None:
    ds = load("TW", target_edges=1 << 15, seed=1, weighted=True)
    g = ds.graph
    print(ds.note)

    # ---- maximum weight matching ------------------------------------
    engine = Engine(g, n_ranks=n_ranks)
    mwm = algorithms.max_weight_matching(engine)
    mate = mwm.values
    matched = int(np.count_nonzero(mate >= 0))
    weight = serial.matching_weight(g, mate)
    print()
    print(f"locally-dominant matching: {matched // 2} pairs "
          f"({matched} of {g.n_vertices} vertices), weight {weight:.2f}")
    print(f"  rounds: {mwm.iterations}, model time {mwm.timings.total * 1e3:.2f}ms")
    assert serial.matching_is_valid(g, mate), "matching invariants violated"
    print("  validity check passed (symmetric, edges exist)")

    # ---- pointer jumping ---------------------------------------------
    engine = Engine(g, n_ranks=n_ranks)
    pj = algorithms.pointer_jumping(engine)
    roots = pj.values
    print()
    print(f"pointer jumping: {pj.extra['n_roots']} forest roots "
          f"in {pj.iterations} doubling rounds")
    # every root is a fixed point and trees respect components
    r = np.unique(roots)
    assert np.array_equal(roots[r], r)
    print(f"  model time {pj.timings.total * 1e3:.2f}ms "
          f"({100 * pj.timings.comm_fraction:.0f}% packet communication)")

    # ---- grid-shape trade-off (paper Fig. 7) --------------------------
    print()
    print("grid-shape sweep for MWM (same 16 ranks):")
    for grid in [Grid2D(R=16, C=1), Grid2D(R=8, C=2), Grid2D(R=4, C=4),
                 Grid2D(R=2, C=8), Grid2D(R=1, C=16)]:
        engine = Engine(g, grid=grid)
        res = algorithms.max_weight_matching(engine)
        print(f"  {grid.C:>2} x {grid.R:<2}: {res.timings.total * 1e3:8.2f}ms")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 16)
