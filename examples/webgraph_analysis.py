#!/usr/bin/env python
"""Web-crawl analysis at cluster scale (the paper's motivating workload).

Loads the WDC12 stand-in (the paper's 128-billion-edge Web Data Commons
crawl, scaled down with full-size metadata retained), places it on 100
simulated GPUs of the AiMOS machine model, and runs a small analysis
pipeline: connectivity structure, PageRank-based importance, and the
size of the largest community by label propagation.

Because the machine model is scaled by the stand-in factor, the
reported times are full-scale projections — what the run would cost on
the real dataset and the real cluster.

Usage::

    python examples/webgraph_analysis.py [n_ranks]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import algorithms
from repro.bench import make_engine
from repro.graph import load


def main(n_ranks: int = 100) -> None:
    ds = load("WDC", target_edges=1 << 17, seed=0)
    print(ds.note)
    print(f"placing on {n_ranks} simulated V100s (machine model scaled "
          f"{ds.scale_factor:.3g}x -> times read as full-scale estimates)")
    engine = make_engine(ds, n_ranks)

    # 1. connectivity structure
    cc = algorithms.connected_components(engine)
    labels = cc.values
    sizes = np.bincount(np.unique(labels, return_inverse=True)[1])
    print()
    print(f"connected components: {cc.extra['n_components']}")
    print(f"  largest component: {sizes.max()} of {labels.size} vertices "
          f"({100 * sizes.max() / labels.size:.1f}%)")
    print(f"  projected full-scale time: {cc.timings.total:.1f}s "
          f"({100 * cc.timings.comm_fraction:.0f}% communication)")

    # 2. importance ranking
    pr = algorithms.pagerank(engine, iterations=20)
    top = np.argsort(pr.values)[::-1][:5]
    print()
    print("top-5 PageRank vertices (stand-in ids):")
    degs = ds.graph.degrees()
    for v in top:
        print(f"  vertex {v:>8}: rank {pr.values[v]:.2e}, degree {degs[v]}")
    print(f"  projected full-scale time: {pr.timings.total:.1f}s")

    # 3. community structure
    lp = algorithms.label_propagation(engine, iterations=20)
    comm_sizes = np.bincount(np.unique(lp.values, return_inverse=True)[1])
    print()
    print(f"label-propagation communities: {lp.extra['n_communities']}")
    print(f"  largest community: {comm_sizes.max()} vertices")
    print(f"  projected full-scale time: {lp.timings.total:.1f}s "
          f"(2.5D hierarchical mode reduction)")

    # throughput summary, as the paper's headline numbers
    print()
    m = ds.meta.n_edges
    for name, res in [("CC", cc), ("PR", pr), ("LP", lp)]:
        print(f"  {name}: {res.timings.teps(m) / 1e9:6.1f} GTEPS projected")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 100)
