#!/usr/bin/env python
"""Tour of the extension algorithms and the vertex-program API.

Everything beyond the paper's Table 3 that the library supports:

* SSSP (Bellman-Ford over the sparse pattern),
* exact k-core decomposition (distributed h-indices, 2.5D reductions),
* triangle counting (masked SUMMA over the 2D blocks),
* and the generic :class:`~repro.VertexProgram` API — the paper's
  "Algorithm 1" as a two-line user program, demonstrated with a
  widest-path computation no dedicated implementation exists for.

Usage::

    python examples/extensions_tour.py [n_ranks]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import Engine, VertexProgram, algorithms, run_vertex_program
from repro.graph import load


def main(n_ranks: int = 16) -> None:
    ds = load("GSH", target_edges=1 << 15, seed=7, weighted=True)
    g = ds.graph
    print(ds.note)
    root = int(np.argmax(g.degrees()))

    # ---- SSSP ----------------------------------------------------------
    res = algorithms.sssp(Engine(g, n_ranks), root=root)
    reached = np.isfinite(res.values)
    print()
    print(f"SSSP from hub {root}: reached {res.extra['n_reached']} vertices "
          f"in {res.iterations} relaxation rounds")
    print(f"  distance spread: {res.values[reached].min():.2f} .. "
          f"{res.values[reached].max():.2f}")

    # ---- k-core decomposition -------------------------------------------
    res = algorithms.core_numbers(Engine(g, n_ranks))
    cores = res.values
    print()
    print(f"k-core decomposition: max core = {res.extra['max_core']} "
          f"({res.iterations} h-index rounds)")
    for k in [1, 2, res.extra["max_core"]]:
        print(f"  vertices with core >= {k}: {int((cores >= k).sum())}")

    # ---- triangle counting ----------------------------------------------
    res = algorithms.triangle_count(Engine(g, n_ranks))
    print()
    print(f"triangles: {res.extra['n_triangles']} "
          f"(masked SUMMA, {res.iterations} inner steps, "
          f"{res.timings.total * 1e3:.2f}ms modeled)")

    # ---- a custom vertex program ----------------------------------------
    # Widest path (maximum bottleneck capacity) from the hub: two lines
    # of user code, full 2D machinery underneath.
    widest = VertexProgram(
        name="widest",
        init=lambda gids: np.where(gids == root, np.inf, -np.inf),
        along_edge=lambda vals, w: np.minimum(vals, w),
        op="max",
    )
    res = run_vertex_program(Engine(g, n_ranks), widest)
    finite = np.isfinite(res.values) & (res.values != np.inf)
    print()
    print(f"widest-path from {root} (custom VertexProgram): "
          f"{res.iterations} iterations")
    if finite.any():
        print(f"  bottleneck capacities: {res.values[finite].min():.3f} .. "
              f"{res.values[finite].max():.3f}")
    print(f"  comm share: {100 * res.timings.comm_fraction:.0f}%")

    # ---- coloring and centrality ----------------------------------------
    res = algorithms.greedy_coloring(Engine(g, n_ranks), seed=1)
    print()
    print(f"Jones-Plassmann coloring: {res.extra['n_colors']} colors "
          f"in {res.iterations} rounds "
          f"(proper: {algorithms.is_proper_coloring(g, res.values)})")

    res = algorithms.betweenness(Engine(g, n_ranks), k_samples=24, seed=2)
    top = np.argsort(res.values)[::-1][:3]
    print()
    print(f"sampled betweenness ({res.extra['n_sources']} sources):")
    for v in top:
        print(f"  vertex {v:>6}: score {res.values[v]:10.1f}, "
              f"degree {g.degrees()[v]}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 16)
