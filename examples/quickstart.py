#!/usr/bin/env python
"""Quickstart: run the benchmark algorithms on a simulated GPU cluster.

Builds a Graph500 R-MAT graph, distributes it over a 4x4 grid of
simulated V100s (the paper's AiMOS machine), and runs BFS, PageRank,
and connected components — printing modeled runtimes, the
computation/communication split, and communication statistics.

Usage::

    python examples/quickstart.py [scale] [n_ranks]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import Engine, algorithms
from repro.graph import rmat


def main(scale: int = 12, n_ranks: int = 16) -> None:
    print(f"generating RMAT scale {scale} (Graph500 parameters) ...")
    graph = rmat(scale, seed=42)
    print(f"  {graph}")

    print(f"building the engine: {n_ranks} simulated V100 GPUs on AiMOS")
    engine = Engine(graph, n_ranks=n_ranks)
    print(f"  {engine}")
    print(f"  grid: {engine.grid}")

    root = int(np.argmax(graph.degrees()))
    runs = [
        ("BFS", lambda: algorithms.bfs(engine, root=root)),
        ("PageRank", lambda: algorithms.pagerank(engine, iterations=20)),
        ("Connected components", lambda: algorithms.connected_components(engine)),
    ]
    print()
    print(f"{'algorithm':>22} {'model time':>12} {'comp':>10} {'comm':>10} {'iters':>6}")
    for name, run in runs:
        result = run()
        t = result.timings
        print(
            f"{name:>22} {t.total * 1e3:>10.2f}ms {t.compute * 1e3:>8.2f}ms "
            f"{t.comm * 1e3:>8.2f}ms {result.iterations:>6}"
        )

    # Everything is validated against serial references in the test
    # suite; show one check inline for good measure.
    from repro.reference import serial

    cc = algorithms.connected_components(engine)
    ok = np.array_equal(
        serial.canonical_labels(cc.values),
        serial.canonical_labels(serial.connected_components(graph)),
    )
    print()
    print(f"distributed CC matches serial reference: {ok}")
    print(f"components found: {cc.extra['n_components']}")
    print()
    print("communication summary (CC run):")
    for kind, stats in cc.counters.items():
        print(
            f"  {kind:>18}: {stats['calls']:5d} calls, "
            f"{stats['bytes'] / 1e6:8.2f} MB, "
            f"{stats['serial_messages']:6d} serialized messages"
        )


if __name__ == "__main__":
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    n_ranks = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    main(scale, n_ranks)
